//! Residual-ZZ calibration: the bridge between the pulse level and the
//! circuit-level error model.
//!
//! For each pulse method, the *cross-region residual factor* `r` is the
//! fraction of a coupling's ZZ strength that still affects the circuit when
//! one of the coupling's qubits carries that method's pulse. It is measured
//! from this repository's own Hamiltonian-level simulations (conditional
//! phase accumulated during the pulse, at the paper's device strength
//! `λ/2π = 200 kHz`), exactly the way a Ramsey experiment would measure it.
//!
//! `r(Gaussian) ≈ 1` (no suppression — a plain pulse even slightly
//! *modulates* the phase but cancels nothing systematically), while the
//! optimized methods reach `r ≪ 1`. The factors feed
//! [`zz_sim::executor::ZzErrorModel::residuals`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use zz_persist::{fnv1a, ArtifactKind, ArtifactStore};
use zz_pulse::khz;
use zz_pulse::library::{id_drive, x90_drive, zx90_drive, PulseMethod};
use zz_pulse::systems::{infidelity_2q, residual_zz_rate, residual_zz_rate_2q, GateSide};
use zz_sim::executor::ResidualTable;

/// The calibration crosstalk strength (the paper's device value).
pub fn calibration_lambda() -> f64 {
    khz(200.0)
}

/// Measures the full residual table of a method from scratch at the
/// paper's calibration strength (pulse-level simulation; a few ms per
/// call).
///
/// Each entry is a conditional-phase residual normalized by `λ`: the
/// fraction of crosstalk a neighbor still sees while the given pulse plays.
/// DCG has no two-qubit sequence (paper Sec 7.2.2); its `ZX90` entries fall
/// back to the Gaussian pulse's.
pub fn measure_residuals(method: PulseMethod) -> ResidualTable {
    measure_residuals_at(method, calibration_lambda())
}

/// Like [`measure_residuals`], at an explicit crosstalk strength — the
/// fleet layer characterizes each backend at *its* currently-believed
/// `λ`, so physically distinct devices (and drifted recalibrations of
/// the same device) get genuinely different tables.
pub fn measure_residuals_at(method: PulseMethod, lambda: f64) -> ResidualTable {
    let x90 = x90_drive(method);
    let id = id_drive(method);
    let rx = (residual_zz_rate(&x90.as_drive(), lambda) / lambda).min(1.0);
    let ri = (residual_zz_rate(&id.as_drive(), lambda) / lambda).min(1.0);
    let two_q = zx90_drive(method).or_else(|| zx90_drive(PulseMethod::Gaussian));
    let (rc, rt) = match two_q {
        Some(d) => (
            (residual_zz_rate_2q(&d.as_drive(), lambda, GateSide::Control) / lambda).min(1.0),
            (residual_zz_rate_2q(&d.as_drive(), lambda, GateSide::Target) / lambda).min(1.0),
        ),
        None => (1.0, 1.0),
    };
    ResidualTable {
        x90: rx,
        id: ri,
        zx90_control: rc,
        zx90_target: rt,
    }
}

/// A thread-safe, lazily-filled cache of per-method residual tables.
///
/// Each pulse method's table is measured at most once per cache (and the
/// process-wide [`CalibCache::global`] instance therefore measures at most
/// once per process), no matter how many threads ask concurrently — the
/// batch engine's workers ([`crate::batch`]) all share the global instance.
/// [`calibration_runs`](CalibCache::calibration_runs) exposes how many
/// measurements actually ran, so tests and reports can verify sharing.
#[derive(Debug, Default)]
pub struct CalibCache {
    slots: [OnceLock<ResidualTable>; PulseMethod::ALL.len()],
    runs: AtomicUsize,
    /// Crosstalk strength the tables are measured at; `0.0` is the
    /// sentinel for the paper's [`calibration_lambda`] (kept so
    /// [`new`](Self::new) stays `const` for the process-wide static).
    lambda: f64,
    /// Calibration epoch, salted into every on-disk key when nonzero —
    /// the invalidation hook the fleet layer uses: bumping the epoch
    /// (with a fresh cache) makes every stale disk artifact unreachable
    /// without touching the files of other devices in the same store.
    epoch: u64,
}

impl CalibCache {
    /// Creates an empty cache (nothing measured yet) at the paper's
    /// calibration strength, epoch 0.
    pub const fn new() -> Self {
        CalibCache {
            slots: [const { OnceLock::new() }; PulseMethod::ALL.len()],
            runs: AtomicUsize::new(0),
            lambda: 0.0,
            epoch: 0,
        }
    }

    /// Creates an empty cache that characterizes at the given crosstalk
    /// strength and calibration epoch. Epoch 0 with the paper's
    /// [`calibration_lambda`] reproduces [`new`](Self::new) exactly
    /// (same measurements, same disk keys); any other `(λ, epoch)` pair
    /// measures at `λ` and keys its artifacts by both, so recalibrating
    /// a drifted device can never serve — or be served — stale tables.
    pub fn at(lambda: f64, epoch: u64) -> Self {
        assert!(lambda > 0.0, "calibration strength must be positive");
        CalibCache {
            lambda,
            epoch,
            ..CalibCache::new()
        }
    }

    /// The crosstalk strength this cache characterizes at.
    pub fn lambda(&self) -> f64 {
        if self.lambda == 0.0 {
            calibration_lambda()
        } else {
            self.lambda
        }
    }

    /// The calibration epoch salted into this cache's disk keys.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The on-disk key of `method`'s residual table *for this cache*:
    /// the method label mixed with the exact measurement-strength bits
    /// (a recalibrated `λ` can never serve stale tables), then salted
    /// with the epoch when one is set.
    pub fn residual_key(&self, method: PulseMethod) -> u64 {
        epoch_salted(residual_artifact_key_at(method, self.lambda()), self.epoch)
    }

    /// The on-disk key of this cache's whole-snapshot artifact (same
    /// `λ` + epoch keying as [`residual_key`](Self::residual_key)).
    pub fn snapshot_key(&self) -> u64 {
        let mut bytes = b"calib-snapshot".to_vec();
        bytes.extend_from_slice(&self.lambda().to_bits().to_le_bytes());
        epoch_salted(fnv1a(&bytes), self.epoch)
    }

    /// Salts a whole-`Compiled` artifact key with this cache's identity.
    /// The default cache (paper `λ`, epoch 0) is the identity function,
    /// keeping the legacy key space; any customized cache mixes its `λ`
    /// bits and epoch in, because the compiled plan embeds the residual
    /// table this cache measured.
    pub fn salt_compiled_key(&self, key: u64) -> u64 {
        if self.lambda == 0.0 && self.epoch == 0 {
            return key;
        }
        epoch_salted(
            zz_persist::fnv1a_mix(key, self.lambda().to_bits()),
            self.epoch,
        )
    }

    /// The process-wide shared instance.
    pub fn global() -> &'static CalibCache {
        static GLOBAL: CalibCache = CalibCache::new();
        &GLOBAL
    }

    /// The cached residual table for `method`, measuring it (at this
    /// cache's `λ`) on first use.
    pub fn residuals(&self, method: PulseMethod) -> ResidualTable {
        *self.slots[slot_index(method)].get_or_init(|| {
            self.runs.fetch_add(1, Ordering::Relaxed);
            measure_residuals_at(method, self.lambda())
        })
    }

    /// How many pulse-level calibration measurements this cache has run
    /// (at most one per pulse method, ever).
    pub fn calibration_runs(&self) -> usize {
        self.runs.load(Ordering::Relaxed)
    }

    /// The cached table for `method` if it is already present, without
    /// triggering a measurement.
    pub fn peek(&self, method: PulseMethod) -> Option<ResidualTable> {
        self.slots[slot_index(method)].get().copied()
    }

    /// Exports every filled slot as `(method, table)` pairs — the artifact
    /// payload behind [`save_to`](Self::save_to).
    pub fn snapshot(&self) -> Vec<(PulseMethod, ResidualTable)> {
        PulseMethod::ALL
            .iter()
            .filter_map(|&m| self.peek(m).map(|t| (m, t)))
            .collect()
    }

    /// Imports a snapshot, filling *empty* slots only (already-measured
    /// tables win, and nothing counts as a calibration run). Returns how
    /// many slots the import filled.
    pub fn import(&self, entries: &[(PulseMethod, ResidualTable)]) -> usize {
        let mut filled = 0;
        for &(method, table) in entries {
            let slot = &self.slots[slot_index(method)];
            let mut fresh = false;
            slot.get_or_init(|| {
                fresh = true;
                table
            });
            filled += fresh as usize;
        }
        filled
    }

    /// Persists the current snapshot to `store` (one `CalibSnapshot`
    /// artifact, plus one per-method `Calibration` artifact so partial
    /// caches can still warm individual methods). Returns the number of
    /// methods written; write failures degrade silently to 0.
    pub fn save_to(&self, store: &ArtifactStore) -> usize {
        let snapshot = self.snapshot();
        store.put(ArtifactKind::CalibSnapshot, self.snapshot_key(), &snapshot);
        snapshot
            .iter()
            .filter(|&&(method, ref table)| {
                store.put(ArtifactKind::Calibration, self.residual_key(method), table)
            })
            .count()
    }

    /// Imports the snapshot persisted in `store`, if any (empty slots only;
    /// a missing or damaged snapshot is simply a no-op). Returns how many
    /// slots were filled from disk.
    pub fn load_from(&self, store: &ArtifactStore) -> usize {
        match store.get::<Vec<(PulseMethod, ResidualTable)>>(
            ArtifactKind::CalibSnapshot,
            self.snapshot_key(),
        ) {
            Some(snapshot) => self.import(&snapshot),
            None => 0,
        }
    }

    /// The cached residual table for `method`, consulting `store` before
    /// measuring: on a disk hit the table loads without counting as a
    /// calibration run; on a miss the measurement runs and its result is
    /// persisted for the next process. With no store this is exactly
    /// [`residuals`](Self::residuals).
    pub fn residuals_via_store(
        &self,
        method: PulseMethod,
        store: Option<&ArtifactStore>,
    ) -> ResidualTable {
        self.residuals_traced(method, store).0
    }

    /// Like [`residuals_via_store`](Self::residuals_via_store), but also
    /// reports *how* the table was obtained — the pipeline's pulse stage
    /// records this in its [`crate::pipeline::PipelineTrace`]:
    ///
    /// * [`MemoryHit`](crate::pipeline::CacheDisposition::MemoryHit) —
    ///   the slot was already measured (or imported) in this cache;
    /// * [`DiskHit`](crate::pipeline::CacheDisposition::DiskHit) — the
    ///   table loaded from the store, no measurement ran;
    /// * [`Miss`](crate::pipeline::CacheDisposition::Miss) — a store was
    ///   consulted, missed, and the measurement ran (then published);
    /// * [`NotCached`](crate::pipeline::CacheDisposition::NotCached) —
    ///   no store: the measurement ran, in-memory only.
    pub fn residuals_traced(
        &self,
        method: PulseMethod,
        store: Option<&ArtifactStore>,
    ) -> (ResidualTable, crate::pipeline::CacheDisposition) {
        use crate::pipeline::CacheDisposition;
        // If the closure below never runs, the slot was already filled —
        // by an earlier call or a concurrent thread: a memory hit.
        let mut disposition = CacheDisposition::MemoryHit;
        let table = *self.slots[slot_index(method)].get_or_init(|| {
            let Some(store) = store else {
                disposition = CacheDisposition::NotCached;
                self.runs.fetch_add(1, Ordering::Relaxed);
                return measure_residuals_at(method, self.lambda());
            };
            let key = self.residual_key(method);
            if let Some(table) = store.get::<ResidualTable>(ArtifactKind::Calibration, key) {
                disposition = CacheDisposition::DiskHit;
                return table;
            }
            disposition = CacheDisposition::Miss;
            self.runs.fetch_add(1, Ordering::Relaxed);
            let table = measure_residuals_at(method, self.lambda());
            store.put(ArtifactKind::Calibration, key, &table);
            table
        });
        (table, disposition)
    }
}

/// Mixes a calibration epoch into an on-disk key; epoch 0 leaves the key
/// untouched so the legacy single-device key space (pinned by
/// `tests/golden_keys.rs`) is unchanged.
fn epoch_salted(key: u64, epoch: u64) -> u64 {
    if epoch == 0 {
        key
    } else {
        zz_persist::fnv1a_mix(key, epoch)
    }
}

/// Index of a method's slot in a [`CalibCache`].
fn slot_index(method: PulseMethod) -> usize {
    PulseMethod::ALL
        .iter()
        .position(|&m| m == method)
        .expect("all methods enumerated")
}

/// On-disk key of a method's residual table at the paper's calibration
/// strength (epoch 0). Per-device caches key through
/// [`CalibCache::residual_key`] instead, which folds in their `λ` and
/// calibration epoch.
pub fn residual_artifact_key(method: PulseMethod) -> u64 {
    residual_artifact_key_at(method, calibration_lambda())
}

/// On-disk key of a method's residual table measured at `lambda`: the
/// method label mixed with the exact measurement-strength bits, so a
/// recalibrated device (different `λ`) can never serve stale tables.
pub fn residual_artifact_key_at(method: PulseMethod, lambda: f64) -> u64 {
    // The Display name ("Gaussian", "Pert", …) is stable and part of the
    // on-disk format, like the golden-keyed digests.
    let mut bytes = method.to_string().into_bytes();
    bytes.extend_from_slice(&lambda.to_bits().to_le_bytes());
    fnv1a(&bytes)
}

/// On-disk key of the whole-cache snapshot artifact.
pub fn snapshot_artifact_key() -> u64 {
    let mut bytes = b"calib-snapshot".to_vec();
    bytes.extend_from_slice(&calibration_lambda().to_bits().to_le_bytes());
    fnv1a(&bytes)
}

/// The cached residual table for a method (the process-wide
/// [`CalibCache::global`] instance).
pub fn residuals(method: PulseMethod) -> ResidualTable {
    CalibCache::global().residuals(method)
}

/// The cached scalar summary of a method's suppression strength: the mean
/// of its `X90` and identity residual factors.
///
/// # Example
///
/// ```
/// use zz_core::{calib, PulseMethod};
/// let gauss = calib::residual_factor(PulseMethod::Gaussian);
/// let pert = calib::residual_factor(PulseMethod::Pert);
/// assert!(pert < gauss / 10.0);
/// ```
pub fn residual_factor(method: PulseMethod) -> f64 {
    let t = residuals(method);
    (t.x90 + t.id) / 2.0
}

/// Spectator infidelity of the method's `ZX90` pulse at the calibration
/// strength (diagnostic; `None` when the method has no two-qubit pulse).
pub fn zx90_spectator_infidelity(method: PulseMethod) -> Option<f64> {
    let drive = zx90_drive(method)?;
    let lambda = calibration_lambda();
    Some(infidelity_2q(&drive.as_drive(), lambda, lambda, lambda))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_has_weak_suppression_at_best() {
        let t = residuals(PulseMethod::Gaussian);
        // A plain X90 rotation only partially averages the crosstalk; the
        // pure coupling-drive ZX90 leaves the control side completely
        // unprotected ([Z⊗X, Z⊗I] = 0).
        assert!(t.x90 > 0.4, "Gaussian X90 residual too low: {}", t.x90);
        assert!(
            t.zx90_control > 0.99,
            "control side must be unprotected: {}",
            t.zx90_control
        );
        assert!(
            t.id > 0.2,
            "the Gaussian Rx(2π) echo is only partial: {}",
            t.id
        );
    }

    #[test]
    fn optimized_methods_suppress_strongly() {
        let gauss = residuals(PulseMethod::Gaussian);
        // OptCtrl suppresses only indirectly through the λ-averaged fidelity
        // (the paper's Fig 16 shows the same gap to the first-order
        // methods), while Pert and DCG cancel the first order outright.
        let optctrl = residuals(PulseMethod::OptCtrl);
        assert!(
            optctrl.x90 < gauss.x90 / 3.0,
            "OptCtrl X90 residual {} too close to Gaussian {}",
            optctrl.x90,
            gauss.x90
        );
        for m in [PulseMethod::Pert, PulseMethod::Dcg] {
            let r = residuals(m);
            assert!(
                r.x90 < gauss.x90 / 10.0 && r.id < gauss.id / 10.0,
                "{m} residuals ({}, {}) too close to Gaussian",
                r.x90,
                r.id
            );
        }
        // Pert's two-qubit pulse protects both sides; Gaussian's does not.
        let pert = residuals(PulseMethod::Pert);
        assert!(pert.zx90_control < 0.01 && pert.zx90_target < 0.01);
    }

    #[test]
    fn pert_is_the_strongest_suppressor() {
        let pert = residual_factor(PulseMethod::Pert);
        let dcg = residual_factor(PulseMethod::Dcg);
        assert!(
            pert <= dcg * 2.0,
            "Pert ({pert}) should be at least comparable to DCG ({dcg})"
        );
    }

    #[test]
    fn default_cache_keys_match_the_legacy_key_space() {
        // Epoch 0 at the paper strength must keep the golden-keyed disk
        // layout bit-for-bit: warm stores from earlier releases stay warm.
        let cache = CalibCache::at(calibration_lambda(), 0);
        for m in PulseMethod::ALL {
            assert_eq!(cache.residual_key(m), residual_artifact_key(m), "{m}");
        }
        assert_eq!(cache.snapshot_key(), snapshot_artifact_key());
        assert_eq!(CalibCache::new().residual_key(PulseMethod::Pert), {
            residual_artifact_key(PulseMethod::Pert)
        });
    }

    #[test]
    fn epoch_and_lambda_salt_every_disk_key() {
        let base = CalibCache::new();
        let bumped = CalibCache::at(calibration_lambda(), 1);
        let drifted = CalibCache::at(calibration_lambda() * 1.25, 1);
        for m in PulseMethod::ALL {
            assert_ne!(base.residual_key(m), bumped.residual_key(m), "{m}");
            assert_ne!(bumped.residual_key(m), drifted.residual_key(m), "{m}");
        }
        assert_ne!(base.snapshot_key(), bumped.snapshot_key());
        assert_ne!(bumped.snapshot_key(), drifted.snapshot_key());
        // Epochs are distinct from each other, not just from 0.
        let later = CalibCache::at(calibration_lambda(), 2);
        assert_ne!(bumped.snapshot_key(), later.snapshot_key());
    }

    #[test]
    fn characterization_strength_changes_the_measured_tables() {
        // Pert cancels the first order, so its fractional residual is
        // nonlinear in λ: a 4× stronger device must measure differently.
        let weak = measure_residuals_at(PulseMethod::Pert, calibration_lambda());
        let strong = measure_residuals_at(PulseMethod::Pert, calibration_lambda() * 4.0);
        assert_ne!(weak.x90.to_bits(), strong.x90.to_bits());
        let cache = CalibCache::at(calibration_lambda() * 4.0, 3);
        assert_eq!(
            cache.residuals(PulseMethod::Pert).x90.to_bits(),
            strong.x90.to_bits(),
            "the cache must measure at its own λ"
        );
        assert_eq!(cache.calibration_runs(), 1);
    }

    #[test]
    fn factors_are_probabilistic_fractions() {
        for m in PulseMethod::ALL {
            let r = residual_factor(m);
            assert!((0.0..=1.0).contains(&r), "{m}: {r}");
        }
    }
}
