//! The pass-based compilation pipeline: typed stages, pluggable
//! schedulers and pulse methods, stage-granular caching and
//! instrumentation.
//!
//! The paper's co-optimization is inherently staged — route onto the
//! device, lower to the native gate set, schedule under a ZZ-suppression
//! requirement, attach calibrated pulses — and this module makes those
//! stages first-class:
//!
//! * **Typed stage artifacts** flow through the pipeline:
//!   [`Logical`] → [`Routed`] → [`Native`] → [`Scheduled`] →
//!   [`Compiled`]. Each implements [`StageArtifact`], which the
//!   instrumentation uses to record input/output sizes.
//! * **A [`Pass`] consumes one artifact and produces the next.** The
//!   fixed passes ([`ValidatePass`], [`RoutePass`], [`LowerPass`]) are
//!   plain structs; the *variant* stages are trait objects — a
//!   [`SchedulerPass`] ([`ParSchedPass`], [`ZzxSchedPass`]) and a
//!   [`PulsePass`] ([`CalibratedPulse`]) — so alternative schedulers or
//!   pulse libraries slot in without touching the driver.
//! * **A [`PassManager`] runs the sequence**, timing every pass and
//!   recording its cache disposition into a [`PipelineTrace`], and
//!   manages the stage-granular caches: an in-memory [`RouteMemo`]
//!   shared across jobs, the on-disk routed/native artifact, and the
//!   on-disk whole-[`Compiled`] artifact. A parameter sweep that only
//!   changes α/k therefore replays the cached route+lower stages and
//!   re-runs only scheduling onward (`tests/pipeline.rs` asserts this).
//!
//! [`CoOptimizer::compile`](crate::CoOptimizer::compile) and the batch
//! engine ([`crate::batch`]) are thin layers over this module; their
//! output is bit-identical to the pre-pipeline implementation
//! (`tests/pipeline.rs` pins the equivalence for every
//! `(PulseMethod, SchedulerKind)` combination).
//!
//! # Example
//!
//! ```
//! use zz_core::pipeline::PassManager;
//! use zz_core::{PulseMethod, SchedulerKind};
//! use zz_circuit::bench::{generate, BenchmarkKind};
//! use zz_topology::Topology;
//! use std::sync::Arc;
//!
//! let manager = PassManager::builder()
//!     .topology(Topology::grid(2, 2))
//!     .pulse_method(PulseMethod::Pert)
//!     .scheduler(SchedulerKind::ZzxSched)
//!     .build();
//! let outcome = manager.run(Arc::new(generate(BenchmarkKind::Qft, 4, 7)))?;
//! assert!(outcome.compiled.plan.layer_count() > 0);
//! // Every stage was timed: validate, route, lower, schedule, pulse.
//! assert_eq!(outcome.trace.passes.len(), 5);
//! # Ok::<(), zz_core::CoOptError>(())
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use zz_circuit::native::{compile_to_native, NativeCircuit};
use zz_circuit::{try_route, try_route_with, Circuit};
use zz_graph::MultiGraph;
use zz_obs::Registry;
use zz_persist::{ArtifactKind, ArtifactStore};
use zz_pulse::library::PulseMethod;
use zz_sched::zzx::{zzx_schedule, Requirement, ZzxConfig};
use zz_sched::{par_schedule, GateDurations, SchedulePlan};
use zz_sim::executor::ResidualTable;
use zz_topology::Topology;

use crate::calib::CalibCache;
use crate::persist::{compiled_artifact_key, native_artifact_key, CompiledArtifact};
use crate::{CoOptError, Compiled, SchedulerKind};

// ---------------------------------------------------------------------
// Stages and instrumentation
// ---------------------------------------------------------------------

/// The fixed stage sequence of the compilation pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Request validation (circuit fits the device).
    Validate,
    /// Routing onto the device topology.
    Route,
    /// Lowering to the native gate set.
    Lower,
    /// Layer scheduling (the [`SchedulerPass`]).
    Schedule,
    /// Pulse attachment: durations + residual lookup (the [`PulsePass`]).
    Pulse,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 5] = [
        Stage::Validate,
        Stage::Route,
        Stage::Lower,
        Stage::Schedule,
        Stage::Pulse,
    ];
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Stage::Validate => "validate",
            Stage::Route => "route",
            Stage::Lower => "lower",
            Stage::Schedule => "schedule",
            Stage::Pulse => "pulse",
        })
    }
}

/// How a pass's result was obtained with respect to the stage caches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CacheDisposition {
    /// No cache covers this pass (or none is configured): it computed.
    #[default]
    NotCached,
    /// Served from an in-memory cache (the [`RouteMemo`] or an
    /// already-measured calibration slot); the pass did not run.
    MemoryHit,
    /// Served from the on-disk [`ArtifactStore`]; the pass did not run.
    DiskHit,
    /// A cache was consulted and missed: the pass ran and published its
    /// result for the next request.
    Miss,
}

impl CacheDisposition {
    /// Whether the pass was served from a cache instead of running.
    pub fn is_hit(self) -> bool {
        matches!(
            self,
            CacheDisposition::MemoryHit | CacheDisposition::DiskHit
        )
    }

    /// The disposition's metric-name segment (`pipeline.route.disk_hit`):
    /// lowercase snake, stable across releases.
    pub fn metric_label(self) -> &'static str {
        match self {
            CacheDisposition::NotCached => "uncached",
            CacheDisposition::MemoryHit => "memory_hit",
            CacheDisposition::DiskHit => "disk_hit",
            CacheDisposition::Miss => "miss",
        }
    }
}

impl fmt::Display for CacheDisposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CacheDisposition::NotCached => "uncached",
            CacheDisposition::MemoryHit => "memory hit",
            CacheDisposition::DiskHit => "disk hit",
            CacheDisposition::Miss => "miss",
        })
    }
}

/// Instrumentation record of one executed (or cache-served) pass.
#[derive(Clone, Copy, Debug)]
pub struct PassTrace {
    /// The stage this pass implements.
    pub stage: Stage,
    /// The pass's name (e.g. `"zzx-sched"`).
    pub name: &'static str,
    /// Wall-clock time of the pass (for cache hits: the lookup time).
    pub wall: Duration,
    /// How the result was obtained.
    pub cache: CacheDisposition,
    /// Input artifact size (gates, native ops or layers).
    pub input_items: usize,
    /// Output artifact size.
    pub output_items: usize,
}

/// The per-pass instrumentation of one pipeline run.
#[derive(Clone, Debug, Default)]
pub struct PipelineTrace {
    /// One record per stage that was executed or cache-served, in
    /// pipeline order. When the whole-plan artifact hits
    /// ([`compiled_cache`](Self::compiled_cache)), only `validate`
    /// appears — the remaining stages never ran.
    pub passes: Vec<PassTrace>,
    /// Disposition of the whole-[`Compiled`] artifact lookup
    /// ([`CacheDisposition::NotCached`] when no store is configured or
    /// the run failed validation).
    pub compiled_cache: CacheDisposition,
    /// End-to-end wall time of the pipeline run.
    pub total_wall: Duration,
}

impl PipelineTrace {
    fn new() -> Self {
        PipelineTrace {
            passes: Vec::new(),
            compiled_cache: CacheDisposition::NotCached,
            total_wall: Duration::ZERO,
        }
    }

    /// The trace record of `stage`, if that stage was reached.
    pub fn pass(&self, stage: Stage) -> Option<&PassTrace> {
        self.passes.iter().find(|p| p.stage == stage)
    }

    /// Wall time spent in `stage` (zero when it never ran).
    pub fn stage_wall(&self, stage: Stage) -> Duration {
        self.passes
            .iter()
            .filter(|p| p.stage == stage)
            .map(|p| p.wall)
            .sum()
    }

    /// Whether `stage` actually executed (reached, and not served from a
    /// cache).
    pub fn executed(&self, stage: Stage) -> bool {
        self.passes
            .iter()
            .any(|p| p.stage == stage && !p.cache.is_hit())
    }
}

/// Compact one-line rendering: `validate 1.2µs → route 310µs (miss) → …`.
impl fmt::Display for PipelineTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.compiled_cache == CacheDisposition::DiskHit {
            return write!(
                f,
                "compiled plan served from disk in {:.1?}",
                self.total_wall
            );
        }
        for (i, p) in self.passes.iter().enumerate() {
            if i > 0 {
                write!(f, " → ")?;
            }
            write!(f, "{} {:.1?}", p.name, p.wall)?;
            if p.cache != CacheDisposition::NotCached {
                write!(f, " ({})", p.cache)?;
            }
        }
        write!(f, " | total {:.1?}", self.total_wall)
    }
}

// ---------------------------------------------------------------------
// Typed stage artifacts
// ---------------------------------------------------------------------

/// A value flowing between pipeline stages; sized for instrumentation.
pub trait StageArtifact {
    /// Item count recorded by the instrumentation (gates, native ops or
    /// scheduled layers — whatever the artifact is made of).
    fn items(&self) -> usize;
}

/// Stage artifact: the logical circuit as submitted.
#[derive(Clone, Debug)]
pub struct Logical {
    /// The source circuit (shared, so the pipeline never deep-copies it).
    pub circuit: Arc<Circuit>,
}

impl StageArtifact for Logical {
    fn items(&self) -> usize {
        self.circuit.gate_count()
    }
}

/// Stage artifact: the circuit routed onto the device topology.
#[derive(Clone, Debug)]
pub struct Routed {
    /// The logical source circuit the routing came from.
    pub source: Arc<Circuit>,
    /// The routed circuit (SWAPs inserted, qubits placed).
    pub circuit: Circuit,
}

impl StageArtifact for Routed {
    fn items(&self) -> usize {
        self.circuit.gate_count()
    }
}

/// Stage artifact: the routed circuit lowered to the native gate set.
#[derive(Clone, Debug)]
pub struct Native {
    /// The logical source circuit the translation came from (`None` when
    /// the pipeline was entered at the native stage, as
    /// [`PassManager::run_native`] does).
    pub source: Option<Arc<Circuit>>,
    /// The native-gate circuit (shared: the [`RouteMemo`] hands the same
    /// translation to every job with this circuit × device shape).
    pub circuit: Arc<NativeCircuit>,
}

impl StageArtifact for Native {
    fn items(&self) -> usize {
        self.circuit.ops().len()
    }
}

/// Stage artifact: the native circuit scheduled into layers.
#[derive(Clone, Debug)]
pub struct Scheduled {
    /// The scheduled layers (with identity supplementation under
    /// ZZXSched).
    pub plan: SchedulePlan,
}

impl StageArtifact for Scheduled {
    fn items(&self) -> usize {
        self.plan.layer_count()
    }
}

impl StageArtifact for Compiled {
    fn items(&self) -> usize {
        self.plan.layer_count()
    }
}

// ---------------------------------------------------------------------
// The Pass contract and the fixed passes
// ---------------------------------------------------------------------

/// Read-only context handed to every pass: the device and the caches.
pub struct PassCx<'a> {
    /// The device topology the pipeline compiles onto.
    pub topology: &'a Topology,
    /// The on-disk artifact store, when configured.
    pub store: Option<&'a ArtifactStore>,
    /// The calibration cache serving residual lookups.
    pub calib: &'a CalibCache,
    /// The routing memo, when the pass runs under a manager. [`RoutePass`]
    /// pulls the device's cached coupling graph from it instead of
    /// rebuilding the graph per compilation.
    pub memo: Option<&'a RouteMemo>,
    /// The metrics registry, when attached (for cache-effectiveness
    /// counters like `route.graph_reuse`).
    pub metrics: Option<&'a Registry>,
}

/// One compilation pass: consumes a typed stage artifact, produces the
/// next. Run passes through [`PassManager::apply`] to get instrumentation
/// for free.
pub trait Pass {
    /// The artifact this pass consumes.
    type Input: StageArtifact;
    /// The artifact this pass produces.
    type Output: StageArtifact;

    /// The stage this pass implements (groups trace records).
    fn stage(&self) -> Stage;

    /// The pass's display name.
    fn name(&self) -> &'static str;

    /// Runs the pass.
    ///
    /// # Errors
    ///
    /// Returns a [`CoOptError`] when the input cannot be compiled:
    /// [`ValidatePass`] rejects oversized circuits with
    /// [`CoOptError::CircuitTooLarge`], [`RoutePass`] surfaces a
    /// disconnected coupling graph as
    /// [`CoOptError::RouteUnreachable`].
    fn run(&self, input: Self::Input, cx: &PassCx<'_>) -> Result<Self::Output, CoOptError>;
}

/// Validation pass: rejects circuits that do not fit the device. Both
/// [`CoOptimizer::compile`](crate::CoOptimizer::compile) and
/// [`CoOptimizer::compile_native`](crate::CoOptimizer::compile_native)
/// surface its error (the pre-pipeline `compile_native` panicked
/// instead).
#[derive(Clone, Copy, Debug, Default)]
pub struct ValidatePass;

impl ValidatePass {
    fn check(needed: usize, topo: &Topology) -> Result<(), CoOptError> {
        if needed > topo.qubit_count() {
            return Err(CoOptError::CircuitTooLarge {
                needed,
                available: topo.qubit_count(),
            });
        }
        Ok(())
    }
}

impl Pass for ValidatePass {
    type Input = Logical;
    type Output = Logical;

    fn stage(&self) -> Stage {
        Stage::Validate
    }

    fn name(&self) -> &'static str {
        "validate"
    }

    fn run(&self, input: Logical, cx: &PassCx<'_>) -> Result<Logical, CoOptError> {
        ValidatePass::check(input.circuit.qubit_count(), cx.topology)?;
        Ok(input)
    }
}

/// Routing pass: places qubits and inserts SWAPs
/// ([`zz_circuit::route`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct RoutePass;

impl Pass for RoutePass {
    type Input = Logical;
    type Output = Routed;

    fn stage(&self) -> Stage {
        Stage::Route
    }

    fn name(&self) -> &'static str {
        "route"
    }

    fn run(&self, input: Logical, cx: &PassCx<'_>) -> Result<Routed, CoOptError> {
        let circuit = match cx.memo {
            Some(memo) => {
                let (graph, reused) = memo.coupling_graph(cx.topology);
                if reused {
                    if let Some(metrics) = cx.metrics {
                        metrics.counter("route.graph_reuse").inc();
                    }
                }
                try_route_with(&input.circuit, cx.topology, &graph)
            }
            None => try_route(&input.circuit, cx.topology),
        }
        .map_err(|e| CoOptError::RouteUnreachable {
            from: e.from,
            to: e.to,
        })?;
        Ok(Routed {
            source: input.circuit,
            circuit,
        })
    }
}

/// Lowering pass: translates the routed circuit to the native gate set
/// ([`zz_circuit::native::compile_to_native`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct LowerPass;

impl Pass for LowerPass {
    type Input = Routed;
    type Output = Native;

    fn stage(&self) -> Stage {
        Stage::Lower
    }

    fn name(&self) -> &'static str {
        "lower"
    }

    fn run(&self, input: Routed, _cx: &PassCx<'_>) -> Result<Native, CoOptError> {
        let native = compile_to_native(&input.circuit);
        Ok(Native {
            source: Some(input.source),
            circuit: Arc::new(native),
        })
    }
}

// ---------------------------------------------------------------------
// The variant stages: scheduler and pulse trait objects
// ---------------------------------------------------------------------

/// The scheduling policy stage: turns a native circuit into layered
/// [`SchedulePlan`]s. Implemented by [`ParSchedPass`] and
/// [`ZzxSchedPass`]; alternative schedulers (e.g. cycle-aware variants)
/// plug in through [`PassManagerBuilder::scheduler_pass`].
pub trait SchedulerPass: fmt::Debug + Send + Sync {
    /// The pass's display name.
    fn name(&self) -> &'static str;

    /// Schedules the native circuit on the device.
    fn schedule(&self, topo: &Topology, native: &NativeCircuit) -> SchedulePlan;
}

/// The maximal-parallelism ASAP baseline ([`zz_sched::par_schedule`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct ParSchedPass;

impl SchedulerPass for ParSchedPass {
    fn name(&self) -> &'static str {
        "par-sched"
    }

    fn schedule(&self, topo: &Topology, native: &NativeCircuit) -> SchedulePlan {
        par_schedule(topo, native)
    }
}

/// The ZZ-aware scheduler of Algorithm 2 ([`zz_sched::zzx_schedule`]).
#[derive(Clone, Copy, Debug)]
pub struct ZzxSchedPass {
    /// The NQ-vs-NC weight α of Algorithm 1.
    pub alpha: f64,
    /// The top-k path-relaxing budget of Algorithm 1.
    pub k: usize,
    /// The suppression requirement (`None` = the topology-derived paper
    /// default, resolved per device at schedule time).
    pub requirement: Option<Requirement>,
}

impl SchedulerPass for ZzxSchedPass {
    fn name(&self) -> &'static str {
        "zzx-sched"
    }

    fn schedule(&self, topo: &Topology, native: &NativeCircuit) -> SchedulePlan {
        let config = ZzxConfig {
            alpha: self.alpha,
            k: self.k,
            requirement: self
                .requirement
                .unwrap_or_else(|| Requirement::paper_default(topo)),
        };
        zzx_schedule(topo, native, &config)
    }
}

/// The pulse stage: maps a pulse method to its gate durations and its
/// measured cross-region residual table. Implemented by
/// [`CalibratedPulse`]; alternative pulse libraries (e.g.
/// crosstalk-cancellation gate variants) plug in through
/// [`PassManagerBuilder::pulse_pass`].
pub trait PulsePass: fmt::Debug + Send + Sync {
    /// The pass's display name.
    fn name(&self) -> &'static str;

    /// The pulse method the compiled plan is calibrated for.
    fn method(&self) -> PulseMethod;

    /// Gate durations implied by the method's pulses.
    fn durations(&self) -> GateDurations;

    /// The method's residual table, plus how it was obtained (measured,
    /// already in memory, or loaded from disk).
    fn residuals(&self, cx: &PassCx<'_>) -> (ResidualTable, CacheDisposition);
}

/// The standard pulse stage: durations from the method (DCG pulses are
/// longer), residuals from the calibration cache — consulting the on-disk
/// store before paying for a pulse-level measurement.
#[derive(Clone, Copy, Debug)]
pub struct CalibratedPulse {
    /// The pulse method to calibrate for.
    pub method: PulseMethod,
}

impl PulsePass for CalibratedPulse {
    fn name(&self) -> &'static str {
        "calibrated-pulse"
    }

    fn method(&self) -> PulseMethod {
        self.method
    }

    fn durations(&self) -> GateDurations {
        durations_for(self.method)
    }

    fn residuals(&self, cx: &PassCx<'_>) -> (ResidualTable, CacheDisposition) {
        cx.calib.residuals_traced(self.method, cx.store)
    }
}

/// A pulse stage with a pre-measured residual table — the engine behind
/// [`CoOptimizer::compile_native_with_residuals`](crate::CoOptimizer::compile_native_with_residuals),
/// where the caller owns the calibration state.
#[derive(Clone, Copy, Debug)]
pub struct FixedResiduals {
    /// The pulse method the table belongs to.
    pub method: PulseMethod,
    /// The table to attach verbatim.
    pub residuals: ResidualTable,
}

impl PulsePass for FixedResiduals {
    fn name(&self) -> &'static str {
        "fixed-residuals"
    }

    fn method(&self) -> PulseMethod {
        self.method
    }

    fn durations(&self) -> GateDurations {
        durations_for(self.method)
    }

    fn residuals(&self, _cx: &PassCx<'_>) -> (ResidualTable, CacheDisposition) {
        (self.residuals, CacheDisposition::NotCached)
    }
}

/// The gate durations implied by a pulse method (DCG stretches its
/// pulses; every other method uses the standard library timings).
pub fn durations_for(method: PulseMethod) -> GateDurations {
    match method {
        PulseMethod::Dcg => GateDurations::dcg(),
        _ => GateDurations::standard(),
    }
}

// ---------------------------------------------------------------------
// The shared routing memo
// ---------------------------------------------------------------------

/// In-memory memo of route+lower results, shared across jobs (and across
/// [`PassManager`]s — the batch engine hands one memo to every job's
/// manager). Keyed by [`shape_key`]; each slot records the exact circuit
/// and topology it serves, so a 64-bit digest collision degrades to a
/// second slot instead of silently serving the wrong circuit.
#[derive(Debug, Default)]
pub struct RouteMemo {
    shapes: Mutex<HashMap<u64, Vec<Arc<MemoEntry>>>>,
    /// Recently used device coupling graphs, most recent last. Routing is
    /// per-job but devices repeat across jobs, so the `O(V + E)` graph
    /// build is hoisted here (see [`coupling_graph`](Self::coupling_graph)).
    graphs: Mutex<Vec<(Topology, Arc<MultiGraph>)>>,
}

/// Device coupling graphs kept in the memo's recency cache. A service
/// process compiles onto a handful of devices at a time; the cap only
/// exists to bound memory if topologies churn.
const MAX_CACHED_DEVICE_GRAPHS: usize = 8;

/// One memo slot: the exact shape it was created for plus the
/// lazily-computed translation. Exactly one thread routes a given shape
/// (concurrent requesters for the *same* shape wait on its `OnceLock`;
/// *different* shapes never serialize — the outer map lock is only held
/// for the entry lookup). Routing errors are memoized too: routing is
/// deterministic, so a shape that failed once fails identically for every
/// requester.
#[derive(Debug)]
struct MemoEntry {
    circuit: Arc<Circuit>,
    topology: Topology,
    native: OnceLock<Result<Arc<NativeCircuit>, CoOptError>>,
}

impl RouteMemo {
    /// Creates an empty memo.
    pub fn new() -> Self {
        RouteMemo::default()
    }

    /// The coupling [`MultiGraph`] of `topo`, built once and shared by
    /// every job compiling onto the same device. Returns the graph and
    /// whether it was served from cache (`true` = reused).
    pub fn coupling_graph(&self, topo: &Topology) -> (Arc<MultiGraph>, bool) {
        let mut graphs = self.graphs.lock().expect("memo poisoned");
        if let Some(pos) = graphs.iter().position(|(t, _)| t == topo) {
            // Move to the most-recently-used end.
            let entry = graphs.remove(pos);
            let graph = Arc::clone(&entry.1);
            graphs.push(entry);
            return (graph, true);
        }
        let graph = Arc::new(topo.to_multigraph());
        if graphs.len() >= MAX_CACHED_DEVICE_GRAPHS {
            graphs.remove(0);
        }
        graphs.push((topo.clone(), Arc::clone(&graph)));
        (graph, false)
    }

    /// The slot for this circuit × device shape, creating it if absent.
    fn slot(&self, key: u64, circuit: &Arc<Circuit>, topo: &Topology) -> Arc<MemoEntry> {
        let mut memo = self.shapes.lock().expect("memo poisoned");
        let bucket = memo.entry(key).or_default();
        match bucket
            .iter()
            .find(|e| *e.circuit == **circuit && e.topology == *topo)
        {
            Some(entry) => Arc::clone(entry),
            None => {
                let entry = Arc::new(MemoEntry {
                    circuit: Arc::clone(circuit),
                    topology: topo.clone(),
                    native: OnceLock::new(),
                });
                bucket.push(Arc::clone(&entry));
                entry
            }
        }
    }

    /// Number of distinct circuit × device shapes currently memoized
    /// (successfully — failed routes do not count).
    pub fn memoized_shapes(&self) -> usize {
        self.shapes
            .lock()
            .expect("memo poisoned")
            .values()
            .flatten()
            .filter(|entry| matches!(entry.native.get(), Some(Ok(_))))
            .count()
    }
}

/// Combined structural key of a circuit × device shape: the routing-memo
/// and on-disk native-artifact key. `tests/golden_keys.rs` pins its
/// output for fixed inputs — if this function (or
/// [`Circuit::content_digest`]) must change meaning, bump
/// [`zz_persist::SCHEMA_VERSION`] alongside.
pub fn shape_key(circuit: &Circuit, topo: &Topology) -> u64 {
    let mut h = circuit.content_digest();
    let mut mix = |w: u64| h = zz_persist::fnv1a_mix(h, w);
    for b in topo.name().bytes() {
        mix(b as u64);
    }
    mix(topo.qubit_count() as u64);
    for &(u, v) in topo.couplings() {
        mix(u as u64);
        mix(v as u64);
    }
    // Routing depends on the geometric embedding (qubit layout is chosen by
    // coordinate order), so the coordinates are part of the shape.
    for q in 0..topo.qubit_count() {
        let (x, y) = topo.coord(q);
        mix(x.to_bits());
        mix(y.to_bits());
    }
    h
}

// ---------------------------------------------------------------------
// The pass manager
// ---------------------------------------------------------------------

/// The full request a [`PassManager`] was configured from, when it was
/// built from the standard enums — the information needed to key and
/// verify the whole-[`Compiled`] disk artifact. Managers built from
/// custom trait-object passes have no spec and skip that cache (the
/// route/lower stage cache still applies: it is scheduler-independent).
#[derive(Clone, Copy, Debug)]
struct RequestSpec {
    method: PulseMethod,
    scheduler: SchedulerKind,
    alpha: f64,
    k: usize,
    requirement: Option<Requirement>,
}

/// The result of a pipeline run: the compiled circuit plus the per-pass
/// instrumentation.
#[derive(Clone, Debug)]
pub struct PipelineOutcome {
    /// The compiled circuit.
    pub compiled: Compiled,
    /// Per-pass wall times, sizes and cache dispositions.
    pub trace: PipelineTrace,
}

/// Runs the pass sequence with per-pass instrumentation and
/// stage-granular caching. See the [module docs](self) for the stage
/// diagram and an example.
#[derive(Debug)]
pub struct PassManager {
    topology: Topology,
    scheduler: Box<dyn SchedulerPass>,
    pulse: Box<dyn PulsePass>,
    store: Option<Arc<ArtifactStore>>,
    calib: Option<Arc<CalibCache>>,
    memo: Arc<RouteMemo>,
    request: Option<RequestSpec>,
    metrics: Option<Arc<Registry>>,
}

impl PassManager {
    /// Starts building a pass manager (defaults match
    /// [`CoOptimizer::builder`](crate::CoOptimizer::builder): 3×4 grid,
    /// `Pert`, `ZZXSched`, `α = 0.5`, `k = 3`, paper requirement, no
    /// store, process-wide calibration).
    pub fn builder() -> PassManagerBuilder {
        PassManagerBuilder::default()
    }

    /// The device topology the pipeline compiles onto.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The calibration cache serving this manager's pulse stage.
    pub fn calib(&self) -> &CalibCache {
        match &self.calib {
            Some(cache) => cache,
            None => CalibCache::global(),
        }
    }

    /// The routing memo shared by this manager's runs.
    pub fn memo(&self) -> &RouteMemo {
        &self.memo
    }

    fn cx(&self) -> PassCx<'_> {
        PassCx {
            topology: &self.topology,
            store: self.store.as_deref(),
            calib: self.calib(),
            memo: Some(&self.memo),
            metrics: self.metrics.as_deref(),
        }
    }

    /// Runs one pass with instrumentation, appending its record to
    /// `trace`. `cache` states how the manager obtained the inputs (the
    /// built-in stage caches live *around* passes, in the manager).
    ///
    /// # Errors
    ///
    /// Propagates the pass's [`CoOptError`] (nothing is recorded then).
    pub fn apply<P: Pass>(
        &self,
        pass: &P,
        input: P::Input,
        cache: CacheDisposition,
        trace: &mut PipelineTrace,
    ) -> Result<P::Output, CoOptError> {
        let input_items = input.items();
        let t0 = Instant::now();
        let output = pass.run(input, &self.cx())?;
        trace.passes.push(PassTrace {
            stage: pass.stage(),
            name: pass.name(),
            wall: t0.elapsed(),
            cache,
            input_items,
            output_items: output.items(),
        });
        Ok(output)
    }

    /// Compiles a logical circuit through the full pass sequence.
    ///
    /// # Errors
    ///
    /// Returns [`CoOptError::CircuitTooLarge`] from the validation pass
    /// if the circuit does not fit the device, or
    /// [`CoOptError::RouteUnreachable`] from the routing pass if the
    /// device's coupling graph violates the connectivity invariant.
    pub fn run(&self, circuit: Arc<Circuit>) -> Result<PipelineOutcome, CoOptError> {
        let total = Instant::now();
        let mut trace = PipelineTrace::new();
        let logical = self.apply(
            &ValidatePass,
            Logical { circuit },
            CacheDisposition::NotCached,
            &mut trace,
        )?;

        // Whole-plan cache point: a usable compiled artifact skips
        // routing, scheduling and calibration outright. The key is
        // salted by the calibration cache's identity (λ + epoch): the
        // compiled plan embeds the residual table, so a recalibrated or
        // drift-invalidated device must miss here and recompile — only
        // the calibration-independent route/native artifacts stay warm.
        let mut compiled_key = 0;
        if let (Some(store), Some(spec)) = (self.store.as_deref(), &self.request) {
            compiled_key = self.calib().salt_compiled_key(compiled_artifact_key(
                shape_key(&logical.circuit, &self.topology),
                spec.method,
                spec.scheduler,
                spec.alpha,
                spec.k,
                spec.requirement,
            ));
            if let Some(artifact) =
                store.get::<CompiledArtifact>(ArtifactKind::Compiled, compiled_key)
            {
                // The artifact embeds its full request; a key collision is
                // rejected here and recompiles instead of serving a wrong
                // plan.
                if artifact.matches(
                    &logical.circuit,
                    &self.topology,
                    spec.method,
                    spec.scheduler,
                    spec.alpha,
                    spec.k,
                    spec.requirement,
                ) {
                    trace.compiled_cache = CacheDisposition::DiskHit;
                    trace.total_wall = total.elapsed();
                    self.publish_trace(&trace);
                    return Ok(PipelineOutcome {
                        compiled: artifact.compiled,
                        trace,
                    });
                }
            }
            trace.compiled_cache = CacheDisposition::Miss;
        }

        let source = Arc::clone(&logical.circuit);
        let native = self.route_and_lower(logical, &mut trace)?;
        let compiled = self.schedule_and_pulse(&native.circuit, &mut trace);

        if let (Some(store), Some(spec)) = (self.store.as_deref(), &self.request) {
            let artifact = CompiledArtifact {
                circuit: (*source).clone(),
                scheduler: spec.scheduler,
                alpha: spec.alpha,
                k: spec.k,
                requirement: spec.requirement,
                compiled: compiled.clone(),
            };
            store.put(ArtifactKind::Compiled, compiled_key, &artifact);
        }

        trace.total_wall = total.elapsed();
        self.publish_trace(&trace);
        Ok(PipelineOutcome { compiled, trace })
    }

    /// Schedules an already-native circuit (the schedule-only entry
    /// point: routing and lowering are skipped, no disk caching, and the
    /// circuit is borrowed — no copies on this hot path).
    ///
    /// # Errors
    ///
    /// Returns [`CoOptError::CircuitTooLarge`] from the validation pass
    /// if the native circuit has more qubits than the device.
    pub fn run_native(&self, native: &NativeCircuit) -> Result<PipelineOutcome, CoOptError> {
        let total = Instant::now();
        let mut trace = PipelineTrace::new();

        let t0 = Instant::now();
        ValidatePass::check(native.qubit_count(), &self.topology)?;
        trace.passes.push(PassTrace {
            stage: Stage::Validate,
            name: "validate",
            wall: t0.elapsed(),
            cache: CacheDisposition::NotCached,
            input_items: native.ops().len(),
            output_items: native.ops().len(),
        });

        let compiled = self.schedule_and_pulse(native, &mut trace);
        trace.total_wall = total.elapsed();
        self.publish_trace(&trace);
        Ok(PipelineOutcome { compiled, trace })
    }

    /// Rolls one finished run's [`PipelineTrace`] into the metrics
    /// registry, if one is attached: per-stage wall-time histograms
    /// (`pipeline.<stage>.wall_us`) and cache-disposition counters
    /// (`pipeline.<stage>.<disposition>`), plus `pipeline.runs`,
    /// `pipeline.wall_us` and the whole-plan `pipeline.compiled.<disp>`
    /// counters. The trace stays the per-request view; the registry is
    /// the cross-request aggregate of the same records.
    fn publish_trace(&self, trace: &PipelineTrace) {
        let Some(registry) = &self.metrics else {
            return;
        };
        registry.counter("pipeline.runs").inc();
        registry
            .histogram("pipeline.wall_us")
            .observe_micros(trace.total_wall);
        for pass in &trace.passes {
            registry
                .histogram(&format!("pipeline.{}.wall_us", pass.stage))
                .observe_micros(pass.wall);
            registry
                .counter(&format!(
                    "pipeline.{}.{}",
                    pass.stage,
                    pass.cache.metric_label()
                ))
                .inc();
        }
        if trace.compiled_cache != CacheDisposition::NotCached {
            registry
                .counter(&format!(
                    "pipeline.compiled.{}",
                    trace.compiled_cache.metric_label()
                ))
                .inc();
        }
    }

    /// The route + lower stages, behind the two stage caches: the shared
    /// in-memory [`RouteMemo`] and the on-disk `native/` artifact.
    fn route_and_lower(
        &self,
        logical: Logical,
        trace: &mut PipelineTrace,
    ) -> Result<Native, CoOptError> {
        let key = shape_key(&logical.circuit, &self.topology);
        let slot = self.memo.slot(key, &logical.circuit, &self.topology);

        // Fast path: the slot is already filled — a pure-lookup memory
        // hit, timed without touching the `OnceLock` wait path. Memoized
        // routing errors replay the same way successes do.
        let t0 = Instant::now();
        if let Some(result) = slot.native.get() {
            let native = Arc::clone(result.as_ref().map_err(Clone::clone)?);
            trace.passes.extend(hit_traces(
                CacheDisposition::MemoryHit,
                t0.elapsed(),
                logical.circuit.gate_count(),
                native.ops().len(),
            ));
            return Ok(Native {
                source: Some(logical.circuit),
                circuit: native,
            });
        }

        // Filled by the closure when *this* thread does the work; when it
        // stays `None` a concurrent thread routed this shape while we
        // blocked on its slot (memory hit).
        let mut computed: Option<Vec<PassTrace>> = None;
        let result = slot.native.get_or_init(|| {
            let disk_key = native_artifact_key(key);
            if let Some(store) = self.store.as_deref() {
                let lookup = Instant::now();
                if let Some(((source, source_topo), native)) =
                    store
                        .get::<((Circuit, Topology), NativeCircuit)>(ArtifactKind::Native, disk_key)
                {
                    if source == *logical.circuit && source_topo == self.topology {
                        let native = Arc::new(native);
                        computed = Some(hit_traces(
                            CacheDisposition::DiskHit,
                            lookup.elapsed(),
                            logical.circuit.gate_count(),
                            native.ops().len(),
                        ));
                        return Ok(native);
                    }
                }
            }
            let disposition = match self.store {
                Some(_) => CacheDisposition::Miss,
                None => CacheDisposition::NotCached,
            };
            let mut inner = PipelineTrace::new();
            // The closure runs the real passes; validation already passed,
            // but routing can still reject a disconnected coupling graph.
            let routed = self.apply(&RoutePass, logical.clone(), disposition, &mut inner)?;
            let native = self
                .apply(&LowerPass, routed, disposition, &mut inner)
                .expect("lower is infallible");
            if let Some(store) = self.store.as_deref() {
                store.put(
                    ArtifactKind::Native,
                    disk_key,
                    &((&*logical.circuit, &self.topology), &*native.circuit),
                );
            }
            computed = Some(inner.passes);
            Ok(native.circuit)
        });
        let native = Arc::clone(result.as_ref().map_err(Clone::clone)?);

        let passes = computed.unwrap_or_else(|| {
            // We blocked while a concurrent worker routed this shape; the
            // routing wall time is attributed to *that* job's trace, so
            // this one records a free hit (otherwise `stage_stats` would
            // double-count the same work once per waiting thread).
            hit_traces(
                CacheDisposition::MemoryHit,
                Duration::ZERO,
                logical.circuit.gate_count(),
                native.ops().len(),
            )
        });
        trace.passes.extend(passes);
        Ok(Native {
            source: Some(logical.circuit),
            circuit: native,
        })
    }

    /// The schedule + pulse stages (never cached individually — the
    /// whole-plan artifact in [`run`](Self::run) covers them).
    fn schedule_and_pulse(&self, native: &NativeCircuit, trace: &mut PipelineTrace) -> Compiled {
        let in_items = native.ops().len();
        let t0 = Instant::now();
        let plan = self.scheduler.schedule(&self.topology, native);
        let scheduled = Scheduled { plan };
        trace.passes.push(PassTrace {
            stage: Stage::Schedule,
            name: self.scheduler.name(),
            wall: t0.elapsed(),
            cache: CacheDisposition::NotCached,
            input_items: in_items,
            output_items: scheduled.items(),
        });

        let in_items = scheduled.items();
        let t0 = Instant::now();
        let (residuals, cache) = self.pulse.residuals(&self.cx());
        let compiled = Compiled {
            plan: scheduled.plan,
            topology: self.topology.clone(),
            durations: self.pulse.durations(),
            method: self.pulse.method(),
            residuals,
        };
        trace.passes.push(PassTrace {
            stage: Stage::Pulse,
            name: self.pulse.name(),
            wall: t0.elapsed(),
            cache,
            input_items: in_items,
            output_items: compiled.items(),
        });
        compiled
    }
}

/// Trace records for a route+lower stage served from a cache: the lookup
/// time is attributed to the route entry, the lower entry is free.
///
/// Sizes describe what the cache *served* — the final native translation
/// — because the routed intermediate no longer exists on this path. A
/// cache-served route entry therefore reports the native op count as its
/// output, where an executed one reports the routed gate count; compare
/// sizes across runs per-disposition, not across cold/warm.
fn hit_traces(
    cache: CacheDisposition,
    lookup: Duration,
    source_gates: usize,
    native_ops: usize,
) -> Vec<PassTrace> {
    vec![
        PassTrace {
            stage: Stage::Route,
            name: "route",
            wall: lookup,
            cache,
            input_items: source_gates,
            output_items: native_ops,
        },
        PassTrace {
            stage: Stage::Lower,
            name: "lower",
            wall: Duration::ZERO,
            cache,
            input_items: native_ops,
            output_items: native_ops,
        },
    ]
}

/// Builder for [`PassManager`].
#[derive(Debug)]
pub struct PassManagerBuilder {
    topology: Topology,
    method: PulseMethod,
    scheduler_kind: SchedulerKind,
    alpha: f64,
    k: usize,
    requirement: Option<Requirement>,
    scheduler_pass: Option<Box<dyn SchedulerPass>>,
    pulse_pass: Option<Box<dyn PulsePass>>,
    store: Option<Arc<ArtifactStore>>,
    calib: Option<Arc<CalibCache>>,
    memo: Option<Arc<RouteMemo>>,
    metrics: Option<Arc<Registry>>,
}

impl Default for PassManagerBuilder {
    fn default() -> Self {
        PassManagerBuilder {
            topology: Topology::grid(3, 4),
            method: PulseMethod::Pert,
            scheduler_kind: SchedulerKind::ZzxSched,
            alpha: 0.5,
            k: 3,
            requirement: None,
            scheduler_pass: None,
            pulse_pass: None,
            store: None,
            calib: None,
            memo: None,
            metrics: None,
        }
    }
}

impl PassManagerBuilder {
    /// Sets the device topology (default: the paper's 3×4 grid).
    pub fn topology(mut self, topo: Topology) -> Self {
        self.topology = topo;
        self
    }

    /// Sets the pulse method (default: `Pert`).
    pub fn pulse_method(mut self, method: PulseMethod) -> Self {
        self.method = method;
        self
    }

    /// Sets the scheduler (default: `ZzxSched`).
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler_kind = scheduler;
        self
    }

    /// Sets the NQ-vs-NC weight α of Algorithm 1 (default 0.5).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the top-k path-relaxing budget of Algorithm 1 (default 3).
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Overrides the suppression requirement `R` (default: the paper's
    /// `NQ < max_degree`, `NC ≤ |E|/2`, derived from the device).
    pub fn requirement(mut self, requirement: Requirement) -> Self {
        self.requirement = Some(requirement);
        self
    }

    /// Replaces the scheduling stage with a custom [`SchedulerPass`].
    /// Disables the whole-plan disk cache for this manager (a custom
    /// pass's output cannot be keyed by the standard request
    /// parameters); the route/lower stage cache still applies.
    pub fn scheduler_pass(mut self, pass: Box<dyn SchedulerPass>) -> Self {
        self.scheduler_pass = Some(pass);
        self
    }

    /// Replaces the pulse stage with a custom [`PulsePass`]. Disables the
    /// whole-plan disk cache, like
    /// [`scheduler_pass`](Self::scheduler_pass).
    pub fn pulse_pass(mut self, pass: Box<dyn PulsePass>) -> Self {
        self.pulse_pass = Some(pass);
        self
    }

    /// Backs the route/lower and whole-plan stages with an on-disk
    /// [`ArtifactStore`] (default: in-memory caching only).
    pub fn store(mut self, store: Arc<ArtifactStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Serves calibration from the given cache instead of the
    /// process-wide [`CalibCache::global`].
    pub fn calib(mut self, calib: Arc<CalibCache>) -> Self {
        self.calib = Some(calib);
        self
    }

    /// Shares a routing memo across managers (the batch engine hands one
    /// memo to every job's manager; default: a fresh private memo).
    pub fn route_memo(mut self, memo: Arc<RouteMemo>) -> Self {
        self.memo = Some(memo);
        self
    }

    /// Publishes per-stage wall times and cache-disposition counts into
    /// a `zz_obs` [`Registry`] after every run (default: no metrics; the
    /// per-request [`PipelineTrace`] is always produced either way).
    pub fn metrics(mut self, registry: Arc<Registry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> PassManager {
        // A manager configured purely from the standard enums carries a
        // request spec, which keys (and verifies) the whole-plan disk
        // artifact. Custom trait-object passes opt out of that cache.
        let request = match (&self.scheduler_pass, &self.pulse_pass) {
            (None, None) => Some(RequestSpec {
                method: self.method,
                scheduler: self.scheduler_kind,
                alpha: self.alpha,
                k: self.k,
                requirement: self.requirement,
            }),
            _ => None,
        };
        let scheduler = self.scheduler_pass.unwrap_or_else(|| {
            scheduler_pass_for(self.scheduler_kind, self.alpha, self.k, self.requirement)
        });
        let pulse = self.pulse_pass.unwrap_or_else(|| {
            Box::new(CalibratedPulse {
                method: self.method,
            })
        });
        PassManager {
            topology: self.topology,
            scheduler,
            pulse,
            store: self.store,
            calib: self.calib,
            memo: self.memo.unwrap_or_default(),
            request,
            metrics: self.metrics,
        }
    }
}

/// The standard [`SchedulerPass`] for a [`SchedulerKind`] with the given
/// Algorithm 1 parameters.
pub fn scheduler_pass_for(
    kind: SchedulerKind,
    alpha: f64,
    k: usize,
    requirement: Option<Requirement>,
) -> Box<dyn SchedulerPass> {
    match kind {
        SchedulerKind::ParSched => Box::new(ParSchedPass),
        SchedulerKind::ZzxSched => Box::new(ZzxSchedPass {
            alpha,
            k,
            requirement,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zz_circuit::{route, Gate};

    fn small_circuit() -> Arc<Circuit> {
        let mut c = Circuit::new(4);
        c.push(Gate::H, &[0])
            .push(Gate::Cnot, &[0, 1])
            .push(Gate::Cnot, &[2, 3]);
        Arc::new(c)
    }

    fn manager() -> PassManager {
        PassManager::builder()
            .topology(Topology::grid(2, 2))
            .build()
    }

    #[test]
    fn full_run_records_every_stage_in_order() {
        // Isolated calibration state: the pulse stage must *measure*
        // (NotCached), not hit a slot another test already filled.
        let outcome = PassManager::builder()
            .topology(Topology::grid(2, 2))
            .calib(Arc::new(CalibCache::new()))
            .build()
            .run(small_circuit())
            .expect("fits");
        let stages: Vec<Stage> = outcome.trace.passes.iter().map(|p| p.stage).collect();
        assert_eq!(stages, Stage::ALL);
        assert_eq!(outcome.trace.compiled_cache, CacheDisposition::NotCached);
        for pass in &outcome.trace.passes {
            assert_eq!(pass.cache, CacheDisposition::NotCached, "{}", pass.name);
        }
        assert!(outcome.trace.total_wall >= outcome.trace.stage_wall(Stage::Schedule));
    }

    #[test]
    fn second_run_hits_the_route_memo() {
        let manager = manager();
        let cold = manager.run(small_circuit()).expect("fits");
        assert!(cold.trace.executed(Stage::Route));
        let warm = manager.run(small_circuit()).expect("fits");
        let route = warm.trace.pass(Stage::Route).expect("route reached");
        assert_eq!(route.cache, CacheDisposition::MemoryHit);
        assert!(!warm.trace.executed(Stage::Route));
        assert!(!warm.trace.executed(Stage::Lower));
        // Scheduling still ran — it is never served by the route memo.
        assert!(warm.trace.executed(Stage::Schedule));
        assert_eq!(cold.compiled, warm.compiled);
        assert_eq!(manager.memo().memoized_shapes(), 1);
    }

    #[test]
    fn memo_reuses_device_coupling_graphs() {
        let memo = RouteMemo::new();
        let topo = Topology::grid(3, 4);
        let (g1, reused1) = memo.coupling_graph(&topo);
        assert!(!reused1, "first build is a miss");
        let (g2, reused2) = memo.coupling_graph(&topo);
        assert!(reused2, "same device must reuse the graph");
        assert!(Arc::ptr_eq(&g1, &g2));
        let (_, reused3) = memo.coupling_graph(&Topology::line(3));
        assert!(!reused3, "a different device is a fresh build");
    }

    #[test]
    fn graph_reuse_counter_increments_across_jobs() {
        let registry = Arc::new(Registry::new());
        let memo = Arc::new(RouteMemo::new());
        let run_one = || {
            PassManager::builder()
                .topology(Topology::grid(2, 2))
                .route_memo(Arc::clone(&memo))
                .metrics(Arc::clone(&registry))
                .build()
                .run(small_circuit())
                .expect("fits")
        };
        run_one();
        let after_first = registry.counter("route.graph_reuse").get();
        // A distinct circuit on the same device routes again and reuses
        // the cached coupling graph.
        let mut c2 = Circuit::new(4);
        c2.push(Gate::Cnot, &[0, 3]);
        PassManager::builder()
            .topology(Topology::grid(2, 2))
            .route_memo(Arc::clone(&memo))
            .metrics(Arc::clone(&registry))
            .build()
            .run(Arc::new(c2))
            .expect("fits");
        assert!(
            registry.counter("route.graph_reuse").get() > after_first,
            "second job on the same device must reuse the graph"
        );
    }

    #[test]
    fn validation_rejects_oversized_circuits_in_both_entry_points() {
        let manager = manager();
        let big = Arc::new(Circuit::new(9));
        assert_eq!(
            manager.run(Arc::clone(&big)).err(),
            Some(CoOptError::CircuitTooLarge {
                needed: 9,
                available: 4
            })
        );
        let native = compile_to_native(&Circuit::new(9));
        assert_eq!(
            manager.run_native(&native).err(),
            Some(CoOptError::CircuitTooLarge {
                needed: 9,
                available: 4
            })
        );
    }

    #[test]
    fn run_native_schedules_without_routing() {
        let manager = manager();
        let native = compile_to_native(&route(&small_circuit(), manager.topology()));
        let outcome = manager.run_native(&native).expect("fits");
        let stages: Vec<Stage> = outcome.trace.passes.iter().map(|p| p.stage).collect();
        assert_eq!(stages, [Stage::Validate, Stage::Schedule, Stage::Pulse]);
    }

    #[test]
    fn custom_scheduler_pass_plugs_in() {
        /// A degenerate scheduler: every native op in its own layer.
        #[derive(Debug)]
        struct OnePerLayer;
        impl SchedulerPass for OnePerLayer {
            fn name(&self) -> &'static str {
                "one-per-layer"
            }
            fn schedule(&self, topo: &Topology, native: &NativeCircuit) -> SchedulePlan {
                // Reuse ParSched on one-op slices to stay well-formed.
                let mut layers = Vec::new();
                for &op in native.ops() {
                    let mut single = NativeCircuit::new(native.qubit_count());
                    single.push(op);
                    layers.extend(par_schedule(topo, &single).layers);
                }
                SchedulePlan::from_parts(topo.qubit_count(), layers, Vec::new())
            }
        }
        let topo = Topology::grid(2, 2);
        let native = compile_to_native(&route(&small_circuit(), &topo));
        let expected = OnePerLayer.schedule(&topo, &native);
        let outcome = PassManager::builder()
            .topology(topo)
            .scheduler_pass(Box::new(OnePerLayer))
            .build()
            .run(small_circuit())
            .expect("fits");
        assert_eq!(outcome.compiled.plan, expected);
        let schedule = outcome.trace.pass(Stage::Schedule).expect("ran");
        assert_eq!(schedule.name, "one-per-layer");
    }

    #[test]
    fn trace_display_is_compact() {
        let outcome = manager().run(small_circuit()).expect("fits");
        let line = outcome.trace.to_string();
        assert!(line.contains("validate"), "{line}");
        assert!(line.contains("zzx-sched"), "{line}");
        assert!(line.contains("total"), "{line}");
    }
}
