//! The `CoOptimizer` facade.

use std::fmt;

use zz_circuit::native::{compile_to_native, NativeCircuit};
use zz_circuit::{route, Circuit};
use zz_pulse::library::PulseMethod;
use zz_sched::zzx::{Requirement, ZzxConfig};
use zz_sched::{par_schedule, zzx_schedule, GateDurations, SchedulePlan};
use zz_topology::Topology;

/// The scheduling policy half of the co-optimization.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Maximal-parallelism ASAP (the baseline of current compilers).
    ParSched,
    /// The ZZ-aware scheduler of Algorithm 2.
    ZzxSched,
}

impl SchedulerKind {
    /// Label used in figures ("ParSched"/"ZZXSched").
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::ParSched => "ParSched",
            SchedulerKind::ZzxSched => "ZZXSched",
        }
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Errors returned by [`CoOptimizer::compile`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoOptError {
    /// The circuit needs more qubits than the device provides.
    CircuitTooLarge {
        /// Qubits required by the circuit.
        needed: usize,
        /// Qubits available on the device.
        available: usize,
    },
}

impl fmt::Display for CoOptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoOptError::CircuitTooLarge { needed, available } => write!(
                f,
                "circuit needs {needed} qubits but the device has {available}"
            ),
        }
    }
}

impl std::error::Error for CoOptError {}

/// A compiled circuit: the schedule plus everything needed to execute or
/// simulate it.
#[derive(Clone, Debug, PartialEq)]
pub struct Compiled {
    /// The scheduled layers.
    pub plan: SchedulePlan,
    /// The device the plan was scheduled for.
    pub topology: Topology,
    /// Pulse durations implied by the pulse method.
    pub durations: GateDurations,
    /// The pulse method the gates are calibrated for.
    pub method: PulseMethod,
    /// The measured cross-region residual factors of that method's pulses.
    pub residuals: zz_sim::executor::ResidualTable,
}

impl Compiled {
    /// Scalar summary of the method's suppression strength (mean of the
    /// `X90` and identity residual factors).
    pub fn residual_factor(&self) -> f64 {
        (self.residuals.x90 + self.residuals.id) / 2.0
    }
}

impl Compiled {
    /// Total execution time (ns).
    pub fn execution_time(&self) -> f64 {
        self.plan.duration(&self.durations)
    }
}

/// The co-optimization framework: pulse method × scheduler on a device.
///
/// Construct with [`CoOptimizer::builder`]; see the [crate docs](crate) for
/// a complete example.
#[derive(Clone, Debug)]
pub struct CoOptimizer {
    topology: Topology,
    method: PulseMethod,
    scheduler: SchedulerKind,
    alpha: f64,
    k: usize,
    requirement: Option<Requirement>,
}

impl CoOptimizer {
    /// Starts building a co-optimizer (defaults: 3×4 grid, `Pert`,
    /// `ZZXSched`, `α = 0.5`, `k = 3`, paper requirement).
    pub fn builder() -> CoOptimizerBuilder {
        CoOptimizerBuilder::default()
    }

    /// The device topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The pulse method.
    pub fn method(&self) -> PulseMethod {
        self.method
    }

    /// The scheduler.
    pub fn scheduler(&self) -> SchedulerKind {
        self.scheduler
    }

    /// Compiles a logical circuit: route → native gates → schedule.
    ///
    /// # Errors
    ///
    /// Returns [`CoOptError::CircuitTooLarge`] if the circuit does not fit
    /// on the device.
    pub fn compile(&self, circuit: &Circuit) -> Result<Compiled, CoOptError> {
        if circuit.qubit_count() > self.topology.qubit_count() {
            return Err(CoOptError::CircuitTooLarge {
                needed: circuit.qubit_count(),
                available: self.topology.qubit_count(),
            });
        }
        let routed = route(circuit, &self.topology);
        let native = compile_to_native(&routed);
        Ok(self.compile_native(&native))
    }

    /// Schedules an already-native circuit (must fit the device).
    ///
    /// # Panics
    ///
    /// Panics if the native circuit has more qubits than the device.
    pub fn compile_native(&self, native: &NativeCircuit) -> Compiled {
        self.compile_native_with_residuals(native, crate::calib::residuals(self.method))
    }

    /// Like [`compile_native`](Self::compile_native), but attaches the
    /// given residual table instead of consulting the process-wide
    /// calibration cache — the batch engine uses this to serve residuals
    /// from a per-compiler [`crate::calib::CalibCache`] or a disk store.
    /// The caller is responsible for passing the table that belongs to
    /// this optimizer's pulse method.
    pub fn compile_native_with_residuals(
        &self,
        native: &NativeCircuit,
        residuals: zz_sim::executor::ResidualTable,
    ) -> Compiled {
        let plan = match self.scheduler {
            SchedulerKind::ParSched => par_schedule(&self.topology, native),
            SchedulerKind::ZzxSched => {
                let config = ZzxConfig {
                    alpha: self.alpha,
                    k: self.k,
                    requirement: self
                        .requirement
                        .unwrap_or_else(|| Requirement::paper_default(&self.topology)),
                };
                zzx_schedule(&self.topology, native, &config)
            }
        };
        let durations = match self.method {
            PulseMethod::Dcg => GateDurations::dcg(),
            _ => GateDurations::standard(),
        };
        Compiled {
            plan,
            topology: self.topology.clone(),
            durations,
            method: self.method,
            residuals,
        }
    }
}

/// Builder for [`CoOptimizer`].
#[derive(Clone, Debug)]
pub struct CoOptimizerBuilder {
    topology: Topology,
    method: PulseMethod,
    scheduler: SchedulerKind,
    alpha: f64,
    k: usize,
    requirement: Option<Requirement>,
}

impl Default for CoOptimizerBuilder {
    fn default() -> Self {
        CoOptimizerBuilder {
            topology: Topology::grid(3, 4),
            method: PulseMethod::Pert,
            scheduler: SchedulerKind::ZzxSched,
            alpha: 0.5,
            k: 3,
            requirement: None,
        }
    }
}

impl CoOptimizerBuilder {
    /// Sets the device topology (default: the paper's 3×4 grid).
    pub fn topology(mut self, topo: Topology) -> Self {
        self.topology = topo;
        self
    }

    /// Sets the pulse method (default: `Pert`).
    pub fn pulse_method(mut self, method: PulseMethod) -> Self {
        self.method = method;
        self
    }

    /// Sets the scheduler (default: `ZzxSched`).
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the NQ-vs-NC weight α of Algorithm 1 (default 0.5).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the top-k path-relaxing budget of Algorithm 1 (default 3).
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Overrides the suppression requirement `R` (default: the paper's
    /// `NQ < max_degree`, `NC ≤ |E|/2`).
    pub fn requirement(mut self, requirement: Requirement) -> Self {
        self.requirement = Some(requirement);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> CoOptimizer {
        CoOptimizer {
            topology: self.topology,
            method: self.method,
            scheduler: self.scheduler,
            alpha: self.alpha,
            k: self.k,
            requirement: self.requirement,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zz_circuit::Gate;

    #[test]
    fn compile_rejects_oversized_circuits() {
        let opt = CoOptimizer::builder()
            .topology(Topology::grid(2, 2))
            .build();
        let c = Circuit::new(9);
        assert_eq!(
            opt.compile(&c).err(),
            Some(CoOptError::CircuitTooLarge {
                needed: 9,
                available: 4
            })
        );
    }

    #[test]
    fn dcg_method_uses_dcg_durations() {
        let opt = CoOptimizer::builder()
            .topology(Topology::line(2))
            .pulse_method(PulseMethod::Dcg)
            .build();
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]);
        let compiled = opt.compile(&c).expect("fits");
        assert_eq!(compiled.durations, GateDurations::dcg());
        assert!(compiled.execution_time() > 0.0);
    }

    #[test]
    fn zzx_compiles_with_identities_parsched_without() {
        let topo = Topology::grid(2, 3);
        let mut c = Circuit::new(6);
        c.push(Gate::H, &[0]).push(Gate::Cnot, &[0, 1]);
        let zzx = CoOptimizer::builder()
            .topology(topo.clone())
            .scheduler(SchedulerKind::ZzxSched)
            .build()
            .compile(&c)
            .expect("fits");
        let par = CoOptimizer::builder()
            .topology(topo)
            .scheduler(SchedulerKind::ParSched)
            .build()
            .compile(&c)
            .expect("fits");
        assert!(zzx.plan.identity_count() > 0);
        assert_eq!(par.plan.identity_count(), 0);
    }

    #[test]
    fn residual_factor_is_attached() {
        let opt = CoOptimizer::builder()
            .topology(Topology::line(2))
            .pulse_method(PulseMethod::Gaussian)
            .build();
        let mut c = Circuit::new(2);
        c.push(Gate::X, &[0]);
        let compiled = opt.compile(&c).expect("fits");
        assert!(
            compiled.residuals.x90 > 0.5,
            "Gaussian X90 must not suppress"
        );
    }
}
