//! The `CoOptimizer` facade — a thin, stable front over the pass-based
//! pipeline ([`crate::pipeline`]).

use std::fmt;
use std::sync::Arc;

use zz_circuit::native::NativeCircuit;
use zz_circuit::Circuit;
use zz_pulse::library::PulseMethod;
use zz_sched::zzx::Requirement;
use zz_sched::{GateDurations, SchedulePlan};
use zz_topology::Topology;

use crate::options::CompileOptions;
use crate::pipeline::{PassManager, PipelineOutcome};

/// The scheduling policy half of the co-optimization.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Maximal-parallelism ASAP (the baseline of current compilers).
    ParSched,
    /// The ZZ-aware scheduler of Algorithm 2.
    ZzxSched,
}

/// The figure label ("ParSched"/"ZZXSched").
impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SchedulerKind::ParSched => "ParSched",
            SchedulerKind::ZzxSched => "ZZXSched",
        })
    }
}

/// Errors returned by [`CoOptimizer::compile`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoOptError {
    /// The circuit needs more qubits than the device provides.
    CircuitTooLarge {
        /// Qubits required by the circuit.
        needed: usize,
        /// Qubits available on the device.
        available: usize,
    },
    /// Routing found no coupling path between two physical qubits.
    ///
    /// [`Topology`] validates connectivity at construction, so this cannot
    /// occur for in-tree devices — it surfaces a violated invariant (e.g. a
    /// corrupted coupling graph) as a typed error instead of panicking a
    /// service worker.
    RouteUnreachable {
        /// The physical qubit the two-qubit gate starts from.
        from: usize,
        /// The physical qubit that could not be reached.
        to: usize,
    },
}

impl fmt::Display for CoOptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoOptError::CircuitTooLarge { needed, available } => write!(
                f,
                "circuit needs {needed} qubits but the device has {available}"
            ),
            CoOptError::RouteUnreachable { from, to } => write!(
                f,
                "no coupling path between physical qubits {from} and {to} \
                 (disconnected device graph)"
            ),
        }
    }
}

impl std::error::Error for CoOptError {}

/// A compiled circuit: the schedule plus everything needed to execute or
/// simulate it.
#[derive(Clone, Debug, PartialEq)]
pub struct Compiled {
    /// The scheduled layers.
    pub plan: SchedulePlan,
    /// The device the plan was scheduled for.
    pub topology: Topology,
    /// Pulse durations implied by the pulse method.
    pub durations: GateDurations,
    /// The pulse method the gates are calibrated for.
    pub method: PulseMethod,
    /// The measured cross-region residual factors of that method's pulses.
    pub residuals: zz_sim::executor::ResidualTable,
}

impl Compiled {
    /// Scalar summary of the method's suppression strength (mean of the
    /// `X90` and identity residual factors).
    pub fn residual_factor(&self) -> f64 {
        (self.residuals.x90 + self.residuals.id) / 2.0
    }
}

impl Compiled {
    /// Total execution time (ns).
    pub fn execution_time(&self) -> f64 {
        self.plan.duration(&self.durations)
    }
}

/// The co-optimization framework: pulse method × scheduler on a device.
///
/// Construct with [`CoOptimizer::builder`]; see the [crate docs](crate) for
/// a complete example.
///
/// **Legacy adapter.** This facade predates the service layer and is kept
/// as a thin, bit-identical adapter over the same pass pipeline that
/// `zz_service::Session` runs (the `tests/service.rs` equivalence matrix
/// pins the two together). New code should build a `zz_service::Target`
/// and compile through a `Session`, which adds a shared routing memo,
/// job queueing and typed errors on top of the identical output.
#[derive(Clone, Debug)]
pub struct CoOptimizer {
    topology: Topology,
    options: CompileOptions,
}

impl CoOptimizer {
    /// Starts building a co-optimizer (defaults: 3×4 grid, `Pert`,
    /// `ZZXSched`, `α = 0.5`, `k = 3`, paper requirement).
    pub fn builder() -> CoOptimizerBuilder {
        CoOptimizerBuilder::default()
    }

    /// The device topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The pulse method.
    pub fn method(&self) -> PulseMethod {
        self.options.method
    }

    /// The scheduler.
    pub fn scheduler(&self) -> SchedulerKind {
        self.options.scheduler
    }

    /// The full request configuration this optimizer compiles under.
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// The [`PassManager`] this optimizer's configuration denotes: the
    /// standard pass sequence on this device with this pulse method and
    /// scheduler, no disk store, process-wide calibration. Every
    /// `compile*` method below runs through one of these.
    pub fn pass_manager(&self) -> PassManager {
        let mut builder = PassManager::builder()
            .topology(self.topology.clone())
            .pulse_method(self.options.method)
            .scheduler(self.options.scheduler)
            .alpha(self.options.alpha_or_default())
            .k(self.options.k_or_default());
        if let Some(req) = self.options.requirement {
            builder = builder.requirement(req);
        }
        builder.build()
    }

    /// Compiles a logical circuit: validate → route → lower to native
    /// gates → schedule → attach pulses.
    ///
    /// # Errors
    ///
    /// Returns [`CoOptError::CircuitTooLarge`] if the circuit does not fit
    /// on the device.
    pub fn compile(&self, circuit: &Circuit) -> Result<Compiled, CoOptError> {
        Ok(self.compile_traced(circuit)?.compiled)
    }

    /// Like [`compile`](Self::compile), but also returns the pipeline's
    /// per-pass instrumentation
    /// ([`PipelineTrace`](crate::pipeline::PipelineTrace)).
    ///
    /// # Errors
    ///
    /// Returns [`CoOptError::CircuitTooLarge`] if the circuit does not fit
    /// on the device.
    pub fn compile_traced(&self, circuit: &Circuit) -> Result<PipelineOutcome, CoOptError> {
        self.pass_manager().run(Arc::new(circuit.clone()))
    }

    /// Schedules an already-native circuit (the schedule-only pipeline
    /// entry point: routing and lowering are skipped).
    ///
    /// # Errors
    ///
    /// Returns [`CoOptError::CircuitTooLarge`] if the native circuit has
    /// more qubits than the device (the pre-pipeline implementation
    /// panicked here; validation now runs in both entry points).
    pub fn compile_native(&self, native: &NativeCircuit) -> Result<Compiled, CoOptError> {
        Ok(self.pass_manager().run_native(native)?.compiled)
    }

    /// Like [`compile_native`](Self::compile_native), but attaches the
    /// given residual table instead of consulting the process-wide
    /// calibration cache — callers that own their calibration state (a
    /// per-compiler [`crate::calib::CalibCache`] or a disk store) inject
    /// tables through this. The caller is responsible for passing the
    /// table that belongs to this optimizer's pulse method.
    ///
    /// # Errors
    ///
    /// Returns [`CoOptError::CircuitTooLarge`] if the native circuit has
    /// more qubits than the device.
    pub fn compile_native_with_residuals(
        &self,
        native: &NativeCircuit,
        residuals: zz_sim::executor::ResidualTable,
    ) -> Result<Compiled, CoOptError> {
        let mut builder = PassManager::builder()
            .topology(self.topology.clone())
            .pulse_pass(Box::new(crate::pipeline::FixedResiduals {
                method: self.options.method,
                residuals,
            }))
            .scheduler(self.options.scheduler)
            .alpha(self.options.alpha_or_default())
            .k(self.options.k_or_default());
        if let Some(req) = self.options.requirement {
            builder = builder.requirement(req);
        }
        Ok(builder.build().run_native(native)?.compiled)
    }
}

/// Builder for [`CoOptimizer`]. The pulse/scheduling knobs are one
/// [`CompileOptions`] value — settable wholesale through
/// [`options`](Self::options) or knob-by-knob through the named setters.
#[derive(Clone, Debug)]
pub struct CoOptimizerBuilder {
    topology: Topology,
    options: CompileOptions,
}

impl Default for CoOptimizerBuilder {
    fn default() -> Self {
        CoOptimizerBuilder {
            topology: Topology::grid(3, 4),
            options: CompileOptions::default(),
        }
    }
}

impl CoOptimizerBuilder {
    /// Sets the device topology (default: the paper's 3×4 grid).
    pub fn topology(mut self, topo: Topology) -> Self {
        self.topology = topo;
        self
    }

    /// Replaces the whole request configuration at once (the service
    /// layer's `CompileRequest` carries the same struct).
    pub fn options(mut self, options: CompileOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the pulse method (default: `Pert`).
    pub fn pulse_method(mut self, method: PulseMethod) -> Self {
        self.options.method = method;
        self
    }

    /// Sets the scheduler (default: `ZzxSched`).
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.options.scheduler = scheduler;
        self
    }

    /// Sets the NQ-vs-NC weight α of Algorithm 1 (default
    /// [`crate::options::DEFAULT_ALPHA`]).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.options.alpha = Some(alpha);
        self
    }

    /// Sets the top-k path-relaxing budget of Algorithm 1 (default
    /// [`crate::options::DEFAULT_K`]).
    pub fn k(mut self, k: usize) -> Self {
        self.options.k = Some(k);
        self
    }

    /// Overrides the suppression requirement `R` (default: the paper's
    /// `NQ < max_degree`, `NC ≤ |E|/2`).
    pub fn requirement(mut self, requirement: Requirement) -> Self {
        self.options.requirement = Some(requirement);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> CoOptimizer {
        CoOptimizer {
            topology: self.topology,
            options: self.options,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zz_circuit::Gate;

    #[test]
    fn compile_rejects_oversized_circuits() {
        let opt = CoOptimizer::builder()
            .topology(Topology::grid(2, 2))
            .build();
        let c = Circuit::new(9);
        assert_eq!(
            opt.compile(&c).err(),
            Some(CoOptError::CircuitTooLarge {
                needed: 9,
                available: 4
            })
        );
    }

    #[test]
    fn dcg_method_uses_dcg_durations() {
        let opt = CoOptimizer::builder()
            .topology(Topology::line(2))
            .pulse_method(PulseMethod::Dcg)
            .build();
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]);
        let compiled = opt.compile(&c).expect("fits");
        assert_eq!(compiled.durations, GateDurations::dcg());
        assert!(compiled.execution_time() > 0.0);
    }

    #[test]
    fn zzx_compiles_with_identities_parsched_without() {
        let topo = Topology::grid(2, 3);
        let mut c = Circuit::new(6);
        c.push(Gate::H, &[0]).push(Gate::Cnot, &[0, 1]);
        let zzx = CoOptimizer::builder()
            .topology(topo.clone())
            .scheduler(SchedulerKind::ZzxSched)
            .build()
            .compile(&c)
            .expect("fits");
        let par = CoOptimizer::builder()
            .topology(topo)
            .scheduler(SchedulerKind::ParSched)
            .build()
            .compile(&c)
            .expect("fits");
        assert!(zzx.plan.identity_count() > 0);
        assert_eq!(par.plan.identity_count(), 0);
    }

    #[test]
    fn residual_factor_is_attached() {
        let opt = CoOptimizer::builder()
            .topology(Topology::line(2))
            .pulse_method(PulseMethod::Gaussian)
            .build();
        let mut c = Circuit::new(2);
        c.push(Gate::X, &[0]);
        let compiled = opt.compile(&c).expect("fits");
        assert!(
            compiled.residuals.x90 > 0.5,
            "Gaussian X90 must not suppress"
        );
    }
}
