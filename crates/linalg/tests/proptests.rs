//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use zz_linalg::eig::eigh;
use zz_linalg::expm::{expm_neg_i_h_t, expm_step};
use zz_linalg::{c64, Matrix, Vector};

/// Strategy: a random complex number with bounded modulus.
fn arb_c64() -> impl Strategy<Value = c64> {
    (-1.0..1.0f64, -1.0..1.0f64).prop_map(|(re, im)| c64::new(re, im))
}

/// Strategy: a random `n×n` complex matrix.
fn arb_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(arb_c64(), n * n).prop_map(move |v| {
        Matrix::from_fn(n, n, |i, j| v[i * n + j])
    })
}

/// Strategy: a random `n×n` Hermitian matrix.
fn arb_hermitian(n: usize) -> impl Strategy<Value = Matrix> {
    arb_matrix(n).prop_map(|m| {
        let mut h = Matrix::zeros(m.rows(), m.cols());
        for i in 0..m.rows() {
            h[(i, i)] = c64::real(m[(i, i)].re);
            for j in (i + 1)..m.cols() {
                let avg = (m[(i, j)] + m[(j, i)].conj()) * 0.5;
                h[(i, j)] = avg;
                h[(j, i)] = avg.conj();
            }
        }
        h
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_is_associative(a in arb_matrix(3), b in arb_matrix(3), c in arb_matrix(3)) {
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-10));
    }

    #[test]
    fn dagger_is_involutive(a in arb_matrix(4)) {
        prop_assert!(a.dagger().dagger().approx_eq(&a, 0.0));
    }

    #[test]
    fn dagger_reverses_products(a in arb_matrix(3), b in arb_matrix(3)) {
        let lhs = a.matmul(&b).dagger();
        let rhs = b.dagger().matmul(&a.dagger());
        prop_assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn kron_mixed_product(a in arb_matrix(2), b in arb_matrix(2), c in arb_matrix(2), d in arb_matrix(2)) {
        let lhs = a.kron(&b).matmul(&c.kron(&d));
        let rhs = a.matmul(&c).kron(&b.matmul(&d));
        prop_assert!(lhs.approx_eq(&rhs, 1e-11));
    }

    #[test]
    fn trace_is_cyclic(a in arb_matrix(4), b in arb_matrix(4)) {
        let t1 = a.matmul(&b).trace();
        let t2 = b.matmul(&a).trace();
        prop_assert!((t1 - t2).abs() < 1e-10);
    }

    #[test]
    fn eigh_reconstructs_and_is_unitary(h in arb_hermitian(5)) {
        let e = eigh(&h);
        prop_assert!(e.vectors.is_unitary(1e-9));
        let lambda: Vec<c64> = e.values.iter().map(|&x| c64::real(x)).collect();
        let rec = e.vectors.matmul(&Matrix::diag(&lambda)).matmul(&e.vectors.dagger());
        prop_assert!(rec.approx_eq(&h, 1e-9));
        // Eigenvalues sorted ascending.
        for w in e.values.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn expm_of_hermitian_is_unitary(h in arb_hermitian(4), t in 0.0..3.0f64) {
        let u = expm_neg_i_h_t(&h, t);
        prop_assert!(u.is_unitary(1e-9));
        let u_fast = expm_step(&h, t);
        prop_assert!(u.approx_eq(&u_fast, 1e-8));
    }

    #[test]
    fn expm_preserves_state_norm(h in arb_hermitian(4), t in 0.0..2.0f64, amps in proptest::collection::vec(arb_c64(), 4)) {
        let v = Vector::from_vec(amps);
        prop_assume!(v.norm() > 1e-3);
        let v = v.normalized();
        let u = expm_step(&h, t);
        let w = u.mul_vec(&v);
        prop_assert!((w.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn vector_dot_conjugate_symmetry(a in proptest::collection::vec(arb_c64(), 5), b in proptest::collection::vec(arb_c64(), 5)) {
        let va = Vector::from_vec(a);
        let vb = Vector::from_vec(b);
        let lhs = va.dot(&vb);
        let rhs = vb.dot(&va).conj();
        prop_assert!((lhs - rhs).abs() < 1e-12);
    }
}
