//! Property-based tests for the linear-algebra substrate.
//!
//! Each test draws 64 random cases from the workspace PRNG (seeded, so
//! failures are reproducible) and checks an algebraic identity on each.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zz_linalg::eig::eigh;
use zz_linalg::expm::{expm_neg_i_h_t, expm_step};
use zz_linalg::{c64, Matrix, Vector};

const CASES: u64 = 64;

/// A random complex number with bounded modulus.
fn arb_c64(rng: &mut StdRng) -> c64 {
    c64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
}

/// A random `n×n` complex matrix.
fn arb_matrix(rng: &mut StdRng, n: usize) -> Matrix {
    let v: Vec<c64> = (0..n * n).map(|_| arb_c64(rng)).collect();
    Matrix::from_fn(n, n, |i, j| v[i * n + j])
}

/// A random `n×n` Hermitian matrix.
fn arb_hermitian(rng: &mut StdRng, n: usize) -> Matrix {
    let m = arb_matrix(rng, n);
    let mut h = Matrix::zeros(m.rows(), m.cols());
    for i in 0..m.rows() {
        h[(i, i)] = c64::real(m[(i, i)].re);
        for j in (i + 1)..m.cols() {
            let avg = (m[(i, j)] + m[(j, i)].conj()) * 0.5;
            h[(i, j)] = avg;
            h[(j, i)] = avg.conj();
        }
    }
    h
}

#[test]
fn matmul_is_associative() {
    for case in 0..CASES {
        let rng = &mut StdRng::seed_from_u64(case);
        let (a, b, c) = (arb_matrix(rng, 3), arb_matrix(rng, 3), arb_matrix(rng, 3));
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        assert!(lhs.approx_eq(&rhs, 1e-10), "case {case}");
    }
}

#[test]
fn dagger_is_involutive() {
    for case in 0..CASES {
        let rng = &mut StdRng::seed_from_u64(case);
        let a = arb_matrix(rng, 4);
        assert!(a.dagger().dagger().approx_eq(&a, 0.0), "case {case}");
    }
}

#[test]
fn dagger_reverses_products() {
    for case in 0..CASES {
        let rng = &mut StdRng::seed_from_u64(case);
        let (a, b) = (arb_matrix(rng, 3), arb_matrix(rng, 3));
        let lhs = a.matmul(&b).dagger();
        let rhs = b.dagger().matmul(&a.dagger());
        assert!(lhs.approx_eq(&rhs, 1e-12), "case {case}");
    }
}

#[test]
fn kron_mixed_product() {
    for case in 0..CASES {
        let rng = &mut StdRng::seed_from_u64(case);
        let (a, b) = (arb_matrix(rng, 2), arb_matrix(rng, 2));
        let (c, d) = (arb_matrix(rng, 2), arb_matrix(rng, 2));
        let lhs = a.kron(&b).matmul(&c.kron(&d));
        let rhs = a.matmul(&c).kron(&b.matmul(&d));
        assert!(lhs.approx_eq(&rhs, 1e-11), "case {case}");
    }
}

#[test]
fn trace_is_cyclic() {
    for case in 0..CASES {
        let rng = &mut StdRng::seed_from_u64(case);
        let (a, b) = (arb_matrix(rng, 4), arb_matrix(rng, 4));
        let t1 = a.matmul(&b).trace();
        let t2 = b.matmul(&a).trace();
        assert!((t1 - t2).abs() < 1e-10, "case {case}");
    }
}

#[test]
fn eigh_reconstructs_and_is_unitary() {
    for case in 0..CASES {
        let rng = &mut StdRng::seed_from_u64(case);
        let h = arb_hermitian(rng, 5);
        let e = eigh(&h);
        assert!(e.vectors.is_unitary(1e-9), "case {case}");
        let lambda: Vec<c64> = e.values.iter().map(|&x| c64::real(x)).collect();
        let rec = e
            .vectors
            .matmul(&Matrix::diag(&lambda))
            .matmul(&e.vectors.dagger());
        assert!(rec.approx_eq(&h, 1e-9), "case {case}");
        // Eigenvalues sorted ascending.
        for w in e.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12, "case {case}");
        }
    }
}

#[test]
fn expm_of_hermitian_is_unitary() {
    for case in 0..CASES {
        let rng = &mut StdRng::seed_from_u64(case);
        let h = arb_hermitian(rng, 4);
        let t = rng.gen_range(0.0..3.0);
        let u = expm_neg_i_h_t(&h, t);
        assert!(u.is_unitary(1e-9), "case {case}");
        let u_fast = expm_step(&h, t);
        assert!(u.approx_eq(&u_fast, 1e-8), "case {case}");
    }
}

#[test]
fn expm_preserves_state_norm() {
    for case in 0..CASES {
        let rng = &mut StdRng::seed_from_u64(case);
        let h = arb_hermitian(rng, 4);
        let t = rng.gen_range(0.0..2.0);
        let amps: Vec<c64> = (0..4).map(|_| arb_c64(rng)).collect();
        let v = Vector::from_vec(amps);
        if v.norm() <= 1e-3 {
            continue; // the property assumes a normalizable state
        }
        let v = v.normalized();
        let u = expm_step(&h, t);
        let w = u.mul_vec(&v);
        assert!((w.norm() - 1.0).abs() < 1e-9, "case {case}");
    }
}

#[test]
fn vector_dot_conjugate_symmetry() {
    for case in 0..CASES {
        let rng = &mut StdRng::seed_from_u64(case);
        let a: Vec<c64> = (0..5).map(|_| arb_c64(rng)).collect();
        let b: Vec<c64> = (0..5).map(|_| arb_c64(rng)).collect();
        let va = Vector::from_vec(a);
        let vb = Vector::from_vec(b);
        let lhs = va.dot(&vb);
        let rhs = vb.dot(&va).conj();
        assert!((lhs - rhs).abs() < 1e-12, "case {case}");
    }
}
