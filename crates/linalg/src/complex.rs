//! A minimal `Copy` complex number type.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
///
/// The name follows the BLAS/LAPACK convention (`c64` = complex of two
/// `f64`s) rather than Rust's type casing, because it is used pervasively as
/// if it were a primitive scalar.
///
/// # Example
///
/// ```
/// use zz_linalg::c64;
///
/// let z = c64::new(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// assert_eq!(z * z.conj(), c64::new(25.0, 0.0));
/// ```
#[allow(non_camel_case_types)]
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct c64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl c64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: c64 = c64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: c64 = c64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: c64 = c64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        c64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        c64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r · e^{iθ}`.
    ///
    /// ```
    /// use zz_linalg::c64;
    /// let z = c64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z - c64::new(0.0, 2.0)).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        c64::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns `e^{iθ}`, a unit-modulus phase factor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        c64::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        c64::new(self.re, -self.im)
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|²`; cheaper than [`c64::abs`] when comparing magnitudes.
    #[inline]
    pub fn abs_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        c64::from_polar(self.re.exp(), self.im)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns non-finite components when `z == 0`, mirroring `1.0 / 0.0`.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.abs_sq();
        c64::new(self.re / d, -self.im / d)
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        c64::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }
}

impl From<f64> for c64 {
    fn from(re: f64) -> Self {
        c64::real(re)
    }
}

impl fmt::Display for c64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for c64 {
    type Output = c64;
    #[inline]
    fn add(self, rhs: c64) -> c64 {
        c64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for c64 {
    type Output = c64;
    #[inline]
    fn sub(self, rhs: c64) -> c64 {
        c64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for c64 {
    type Output = c64;
    #[inline]
    fn mul(self, rhs: c64) -> c64 {
        c64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for c64 {
    type Output = c64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w computed as z·w⁻¹
    fn div(self, rhs: c64) -> c64 {
        self * rhs.recip()
    }
}

impl Neg for c64 {
    type Output = c64;
    #[inline]
    fn neg(self) -> c64 {
        c64::new(-self.re, -self.im)
    }
}

impl Mul<f64> for c64 {
    type Output = c64;
    #[inline]
    fn mul(self, rhs: f64) -> c64 {
        c64::new(self.re * rhs, self.im * rhs)
    }
}

impl Mul<c64> for f64 {
    type Output = c64;
    #[inline]
    fn mul(self, rhs: c64) -> c64 {
        rhs * self
    }
}

impl Div<f64> for c64 {
    type Output = c64;
    #[inline]
    fn div(self, rhs: f64) -> c64 {
        c64::new(self.re / rhs, self.im / rhs)
    }
}

impl AddAssign for c64 {
    #[inline]
    fn add_assign(&mut self, rhs: c64) {
        *self = *self + rhs;
    }
}

impl SubAssign for c64 {
    #[inline]
    fn sub_assign(&mut self, rhs: c64) {
        *self = *self - rhs;
    }
}

impl MulAssign for c64 {
    #[inline]
    fn mul_assign(&mut self, rhs: c64) {
        *self = *self * rhs;
    }
}

impl Sum for c64 {
    fn sum<I: Iterator<Item = c64>>(iter: I) -> c64 {
        iter.fold(c64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = c64::new(1.5, -2.5);
        assert_eq!(z + c64::ZERO, z);
        assert_eq!(z * c64::ONE, z);
        assert_eq!(z - z, c64::ZERO);
        assert!((z * z.recip() - c64::ONE).abs() < 1e-15);
    }

    #[test]
    fn conjugate_and_modulus() {
        let z = c64::new(3.0, 4.0);
        assert_eq!(z.conj(), c64::new(3.0, -4.0));
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.abs_sq(), 25.0);
    }

    #[test]
    fn polar_roundtrip() {
        let z = c64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < 1e-15);
        assert!((z.arg() - 0.7).abs() < 1e-15);
    }

    #[test]
    fn exp_of_imaginary_is_phase() {
        let z = c64::new(0.0, std::f64::consts::PI).exp();
        assert!((z - c64::new(-1.0, 0.0)).abs() < 1e-15);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(c64::I * c64::I, c64::new(-1.0, 0.0));
    }

    #[test]
    fn sqrt_squares_back() {
        let z = c64::new(-3.0, 4.0);
        let s = z.sqrt();
        assert!((s * s - z).abs() < 1e-12);
    }

    #[test]
    fn division() {
        let a = c64::new(1.0, 2.0);
        let b = c64::new(3.0, -1.0);
        let q = a / b;
        assert!((q * b - a).abs() < 1e-14);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(c64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(c64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn sum_over_iterator() {
        let total: c64 = (0..4).map(|k| c64::new(k as f64, 1.0)).sum();
        assert_eq!(total, c64::new(6.0, 4.0));
    }
}
