//! Dense row-major complex matrices.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use crate::{c64, Vector};

/// A dense complex matrix stored in row-major order.
///
/// Sized for the few-qubit Hamiltonians this workspace simulates (dimension
/// ≤ 64); all operations are straightforward `O(n³)`/`O(n²)` loops with no
/// hidden allocation tricks.
///
/// # Example
///
/// ```
/// use zz_linalg::{c64, Matrix};
///
/// let x = Matrix::from_rows(&[
///     &[c64::ZERO, c64::ONE],
///     &[c64::ONE, c64::ZERO],
/// ]);
/// let z = Matrix::from_rows(&[
///     &[c64::ONE, c64::ZERO],
///     &[c64::ZERO, -c64::ONE],
/// ]);
/// // XZ = -ZX for Pauli matrices.
/// assert!((&x * &z).approx_eq(&(&z * &x).scale(-c64::ONE), 1e-15));
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<c64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![c64::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = c64::ONE;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: &[&[c64]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have the same length"
        );
        Matrix {
            rows: rows.len(),
            cols,
            data: rows.iter().flat_map(|r| r.iter().copied()).collect(),
        }
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    pub fn diag(entries: &[c64]) -> Self {
        let n = entries.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &e) in entries.iter().enumerate() {
            m[(i, i)] = e;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> c64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[c64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [c64] {
        &mut self.data
    }

    /// Matrix product `self · rhs`.
    ///
    /// Uses the cache-friendly `ikj` loop order.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == c64::ZERO {
                    continue;
                }
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &r) in orow.iter_mut().zip(rrow) {
                    *o += a * r;
                }
            }
        }
        out
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != v.len()`.
    pub fn mul_vec(&self, v: &Vector) -> Vector {
        assert_eq!(self.cols, v.len(), "mul_vec dimension mismatch");
        let mut out = vec![c64::ZERO; self.rows];
        for (i, slot) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *slot = row.iter().zip(v.as_slice()).map(|(&a, &x)| a * x).sum();
        }
        Vector::from_vec(out)
    }

    /// Conjugate transpose `self†`.
    pub fn dagger(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Plain transpose (no conjugation).
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Entry-wise complex conjugate.
    pub fn conj(&self) -> Matrix {
        let mut out = self.clone();
        for z in &mut out.data {
            *z = z.conj();
        }
        out
    }

    /// Scales every entry by `factor`.
    pub fn scale(&self, factor: c64) -> Matrix {
        let mut out = self.clone();
        for z in &mut out.data {
            *z *= factor;
        }
        out
    }

    /// Trace `Σᵢ Aᵢᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> c64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm `√(Σ |Aᵢⱼ|²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.abs_sq()).sum::<f64>().sqrt()
    }

    /// Largest entry modulus (max norm).
    pub fn max_norm(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    ///
    /// ```
    /// use zz_linalg::{c64, Matrix};
    /// let i2 = Matrix::identity(2);
    /// let kron = i2.kron(&i2);
    /// assert!(kron.approx_eq(&Matrix::identity(4), 0.0));
    /// ```
    pub fn kron(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a == c64::ZERO {
                    continue;
                }
                for k in 0..rhs.rows {
                    for l in 0..rhs.cols {
                        out[(i * rhs.rows + k, j * rhs.cols + l)] = a * rhs[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// `Tr(self† · rhs)` — the Hilbert–Schmidt inner product.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn hs_inner(&self, rhs: &Matrix) -> c64 {
        assert_eq!(self.rows, rhs.rows, "hs_inner shape mismatch");
        assert_eq!(self.cols, rhs.cols, "hs_inner shape mismatch");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a.conj() * b)
            .sum()
    }

    /// Returns `true` if every entry differs from `other` by at most `tol`
    /// in modulus.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// Returns `true` if `self† self ≈ I` within `tol` (per entry).
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.is_square()
            && self
                .dagger()
                .matmul(self)
                .approx_eq(&Matrix::identity(self.rows), tol)
    }

    /// Returns `true` if `self ≈ self†` within `tol` (per entry).
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.is_square() && self.approx_eq(&self.dagger(), tol)
    }

    /// Sums `self + rhs` in place, scaled: `self += factor * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled(&mut self, rhs: &Matrix, factor: c64) {
        assert_eq!(self.rows, rhs.rows, "add_scaled shape mismatch");
        assert_eq!(self.cols, rhs.cols, "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += factor * b;
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = c64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &c64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut c64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_scaled(rhs, c64::ONE);
        out
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_scaled(rhs, -c64::ONE);
        out
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                let z = self[(i, j)];
                write!(f, "{:+.4}{:+.4}i ", z.re, z.im)?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pauli_x() -> Matrix {
        Matrix::from_rows(&[&[c64::ZERO, c64::ONE], &[c64::ONE, c64::ZERO]])
    }

    fn pauli_y() -> Matrix {
        Matrix::from_rows(&[&[c64::ZERO, -c64::I], &[c64::I, c64::ZERO]])
    }

    fn pauli_z() -> Matrix {
        Matrix::from_rows(&[&[c64::ONE, c64::ZERO], &[c64::ZERO, -c64::ONE]])
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let x = pauli_x();
        let i = Matrix::identity(2);
        assert!(x.matmul(&i).approx_eq(&x, 0.0));
        assert!(i.matmul(&x).approx_eq(&x, 0.0));
    }

    #[test]
    fn pauli_algebra() {
        // XY = iZ
        let xy = pauli_x().matmul(&pauli_y());
        assert!(xy.approx_eq(&pauli_z().scale(c64::I), 1e-15));
        // X² = I
        assert!(pauli_x()
            .matmul(&pauli_x())
            .approx_eq(&Matrix::identity(2), 1e-15));
    }

    #[test]
    fn dagger_of_y_is_y() {
        assert!(pauli_y().is_hermitian(0.0));
        assert!(pauli_y().is_unitary(1e-15));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let z = pauli_z();
        let zz = z.kron(&z);
        assert_eq!(zz.rows(), 4);
        assert_eq!(zz[(0, 0)], c64::ONE);
        assert_eq!(zz[(1, 1)], -c64::ONE);
        assert_eq!(zz[(2, 2)], -c64::ONE);
        assert_eq!(zz[(3, 3)], c64::ONE);
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A⊗B)(C⊗D) = (AC)⊗(BD)
        let a = pauli_x();
        let b = pauli_y();
        let c = pauli_z();
        let d = Matrix::identity(2);
        let lhs = a.kron(&b).matmul(&c.kron(&d));
        let rhs = a.matmul(&c).kron(&b.matmul(&d));
        assert!(lhs.approx_eq(&rhs, 1e-14));
    }

    #[test]
    fn trace_and_norms() {
        let z = pauli_z();
        assert_eq!(z.trace(), c64::ZERO);
        assert!((z.frobenius_norm() - 2f64.sqrt()).abs() < 1e-15);
        assert_eq!(z.max_norm(), 1.0);
    }

    #[test]
    fn hs_inner_orthogonality_of_paulis() {
        assert_eq!(pauli_x().hs_inner(&pauli_y()), c64::ZERO);
        assert_eq!(pauli_x().hs_inner(&pauli_x()), c64::new(2.0, 0.0));
    }

    #[test]
    fn mul_vec_matches_matmul() {
        let y = pauli_y();
        let v = Vector::from_vec(vec![c64::new(1.0, 0.0), c64::new(0.0, 1.0)]);
        let got = y.mul_vec(&v);
        assert!((got[0] - c64::new(1.0, 0.0)).abs() < 1e-15);
        assert!((got[1] - c64::I).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn diag_builds_square_matrix() {
        let d = Matrix::diag(&[c64::ONE, c64::I]);
        assert_eq!(d[(1, 1)], c64::I);
        assert_eq!(d[(0, 1)], c64::ZERO);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = pauli_x();
        let b = pauli_z();
        let sum = &a + &b;
        let back = &sum - &b;
        assert!(back.approx_eq(&a, 1e-15));
    }
}
