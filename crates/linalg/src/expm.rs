//! Unitary matrix exponentials.
//!
//! Time evolution under a Hamiltonian `H` for duration `t` is
//! `U = exp(−i H t)`. Two implementations are provided:
//!
//! * [`expm_neg_i_h_t`] — exact via Hermitian eigendecomposition; use it for
//!   one-off propagators and as a reference.
//! * [`expm_step`] — scaled Taylor series; 5–20× faster for the short
//!   time-steps of piecewise-constant propagation loops, with a dedicated
//!   analytic fast path for 2×2 Hamiltonians.

use crate::eig::eigh;
use crate::{c64, Matrix};

/// Computes `exp(−i H t)` for a Hermitian `H` via eigendecomposition.
///
/// # Panics
///
/// Panics if `h` is not square or not Hermitian (see [`eigh`]).
///
/// # Example
///
/// ```
/// use zz_linalg::{c64, Matrix};
/// use zz_linalg::expm::expm_neg_i_h_t;
///
/// let z = Matrix::diag(&[c64::ONE, -c64::ONE]);
/// let u = expm_neg_i_h_t(&z, std::f64::consts::PI);
/// // exp(−iπZ) = −I.
/// assert!(u.approx_eq(&Matrix::identity(2).scale(-c64::ONE), 1e-12));
/// ```
pub fn expm_neg_i_h_t(h: &Matrix, t: f64) -> Matrix {
    let e = eigh(h);
    let n = h.rows();
    let phases: Vec<c64> = e.values.iter().map(|&l| c64::cis(-l * t)).collect();
    // V · diag(phases) · V†
    let mut out = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let mut acc = c64::ZERO;
            for (k, &phase) in phases.iter().enumerate() {
                acc += e.vectors[(i, k)] * phase * e.vectors[(j, k)].conj();
            }
            out[(i, j)] = acc;
        }
    }
    out
}

/// Computes `exp(−i H dt)` for a Hermitian `H`, optimized for the short
/// steps of a propagation loop.
///
/// Dispatches to an analytic formula for 2×2 matrices and to a
/// scaling-and-squaring Taylor expansion otherwise. Accuracy is close to
/// machine precision for `‖H·dt‖ ≲ 10`.
///
/// # Panics
///
/// Panics if `h` is not square.
pub fn expm_step(h: &Matrix, dt: f64) -> Matrix {
    assert!(h.is_square(), "expm_step requires a square matrix");
    if h.rows() == 2 {
        return expm_2x2(h, dt);
    }
    expm_taylor(&h.scale(c64::new(0.0, -dt)))
}

/// Analytic `exp(−i H dt)` for a 2×2 Hermitian `H = c·I + n⃗·σ⃗`.
fn expm_2x2(h: &Matrix, dt: f64) -> Matrix {
    let a = h[(0, 0)].re;
    let d = h[(1, 1)].re;
    let b = h[(0, 1)]; // = nx − i·ny
    let nx = b.re;
    let ny = -b.im;
    let nz = (a - d) / 2.0;
    let c = (a + d) / 2.0;
    let n = (nx * nx + ny * ny + nz * nz).sqrt();
    let phase = c64::cis(-c * dt);
    if n * dt == 0.0 {
        return Matrix::identity(2).scale(phase);
    }
    let (cosv, sinv) = ((n * dt).cos(), (n * dt).sin());
    let f = -sinv / n; // multiplies i·(n⃗·σ⃗)
    let m00 = c64::new(cosv, f * nz);
    let m11 = c64::new(cosv, -f * nz);
    let m01 = c64::new(f * ny, f * nx);
    let m10 = c64::new(-f * ny, f * nx);
    Matrix::from_rows(&[&[phase * m00, phase * m01], &[phase * m10, phase * m11]])
}

/// `exp(M)` via scaling-and-squaring with a fixed-order Taylor series.
///
/// Intended for anti-Hermitian `M` (so the result is unitary); the series is
/// truncated at order 12 after scaling `‖M‖₁ < 0.5`.
pub fn expm_taylor(m: &Matrix) -> Matrix {
    let n = m.rows();
    let norm = m.max_norm() * n as f64; // cheap upper bound on the 1-norm
    let mut squarings = 0u32;
    let mut scale = 1.0;
    while norm * scale > 0.5 && squarings < 40 {
        squarings += 1;
        scale *= 0.5;
    }
    let ms = m.scale(c64::real(scale));

    // Horner evaluation of Σ_{k≤12} M^k / k!.
    let mut result = Matrix::identity(n);
    for k in (1..=12).rev() {
        result = ms.matmul(&result);
        for i in 0..n {
            let r = &mut result;
            let row = i;
            for j in 0..n {
                r[(row, j)] = r[(row, j)] / k as f64;
            }
        }
        for i in 0..n {
            result[(i, i)] += c64::ONE;
        }
    }
    for _ in 0..squarings {
        result = result.matmul(&result);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pauli_x() -> Matrix {
        Matrix::from_rows(&[&[c64::ZERO, c64::ONE], &[c64::ONE, c64::ZERO]])
    }

    #[test]
    fn rotation_about_x_matches_closed_form() {
        // exp(−i θ/2 X) = cos(θ/2) I − i sin(θ/2) X
        let theta: f64 = 1.234;
        let u = expm_neg_i_h_t(&pauli_x(), theta / 2.0);
        let expected = {
            let mut m = Matrix::identity(2).scale(c64::real((theta / 2.0).cos()));
            m.add_scaled(&pauli_x(), c64::new(0.0, -(theta / 2.0).sin()));
            m
        };
        assert!(u.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn expm_step_2x2_matches_eig_path() {
        let h = Matrix::from_rows(&[
            &[c64::real(0.3), c64::new(0.1, -0.7)],
            &[c64::new(0.1, 0.7), c64::real(-1.1)],
        ]);
        let a = expm_neg_i_h_t(&h, 0.37);
        let b = expm_step(&h, 0.37);
        assert!(a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn expm_step_4x4_matches_eig_path() {
        let zz = {
            let z = Matrix::diag(&[c64::ONE, -c64::ONE]);
            z.kron(&z)
        };
        let zx = {
            let z = Matrix::diag(&[c64::ONE, -c64::ONE]);
            z.kron(&pauli_x())
        };
        let h = &zz + &zx.scale(c64::real(0.5));
        let a = expm_neg_i_h_t(&h, 0.81);
        let b = expm_step(&h, 0.81);
        assert!(a.approx_eq(&b, 1e-11));
        assert!(b.is_unitary(1e-11));
    }

    #[test]
    fn propagation_composes() {
        // exp(−iH(t1+t2)) = exp(−iHt2)·exp(−iHt1)
        let h = pauli_x();
        let u1 = expm_step(&h, 0.2);
        let u2 = expm_step(&h, 0.3);
        let u12 = expm_step(&h, 0.5);
        assert!(u2.matmul(&u1).approx_eq(&u12, 1e-12));
    }

    #[test]
    fn taylor_handles_larger_steps() {
        let h = pauli_x().kron(&pauli_x()).scale(c64::real(3.0));
        let a = expm_neg_i_h_t(&h, 2.0);
        let b = expm_step(&h, 2.0);
        assert!(a.approx_eq(&b, 1e-10));
    }

    #[test]
    fn zero_hamiltonian_gives_identity() {
        let u = expm_step(&Matrix::zeros(4, 4), 1.0);
        assert!(u.approx_eq(&Matrix::identity(4), 1e-15));
    }
}
