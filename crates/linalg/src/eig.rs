//! Hermitian eigendecomposition via the cyclic complex Jacobi method.
//!
//! The Jacobi method is chosen over Householder + QR because it is short,
//! numerically very robust, and more than fast enough for the matrix sizes
//! this workspace deals with (dimension ≤ 64). Each sweep annihilates every
//! off-diagonal entry once with a unitary 2×2 rotation; convergence is
//! quadratic once the off-diagonal mass is small.

use crate::{c64, Matrix};

/// Result of a Hermitian eigendecomposition `A = V · diag(λ) · V†`.
#[derive(Clone, Debug)]
pub struct Eigh {
    /// Eigenvalues in ascending order (real, since `A` is Hermitian).
    pub values: Vec<f64>,
    /// Unitary matrix whose columns are the corresponding eigenvectors.
    pub vectors: Matrix,
}

/// Maximum number of Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 64;

/// Computes the eigendecomposition of a Hermitian matrix.
///
/// # Panics
///
/// Panics if `a` is not square, or not Hermitian within `1e-8` (per entry),
/// or if the iteration fails to converge (which does not happen for genuine
/// Hermitian input).
///
/// # Example
///
/// ```
/// use zz_linalg::{c64, Matrix};
/// use zz_linalg::eig::eigh;
///
/// let x = Matrix::from_rows(&[
///     &[c64::ZERO, c64::ONE],
///     &[c64::ONE, c64::ZERO],
/// ]);
/// let e = eigh(&x);
/// assert!((e.values[0] + 1.0).abs() < 1e-12);
/// assert!((e.values[1] - 1.0).abs() < 1e-12);
/// ```
pub fn eigh(a: &Matrix) -> Eigh {
    assert!(a.is_square(), "eigh requires a square matrix");
    assert!(
        a.is_hermitian(1e-8),
        "eigh requires a Hermitian matrix (tolerance 1e-8)"
    );
    let n = a.rows();
    let mut m = a.clone();
    // Symmetrize exactly to keep the diagonal real under rounding.
    for i in 0..n {
        m[(i, i)] = c64::real(m[(i, i)].re);
        for j in (i + 1)..n {
            let avg = (m[(i, j)] + m[(j, i)].conj()) * 0.5;
            m[(i, j)] = avg;
            m[(j, i)] = avg.conj();
        }
    }
    let mut v = Matrix::identity(n);

    let scale = m.frobenius_norm().max(1.0);
    let tol = 1e-14 * scale;

    for _sweep in 0..MAX_SWEEPS {
        let off = off_diagonal_norm(&m);
        if off <= tol {
            return sort_eigh(m, v);
        }
        for p in 0..n {
            for q in (p + 1)..n {
                jacobi_rotate(&mut m, &mut v, p, q);
            }
        }
    }
    // Accept the result if we are within a looser tolerance; otherwise the
    // input was not Hermitian enough to start with.
    let off = off_diagonal_norm(&m);
    assert!(
        off <= 1e-9 * scale,
        "Jacobi iteration failed to converge (residual {off:e})"
    );
    sort_eigh(m, v)
}

/// Frobenius norm of the strictly off-diagonal part.
fn off_diagonal_norm(m: &Matrix) -> f64 {
    let n = m.rows();
    let mut s = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                s += m[(i, j)].abs_sq();
            }
        }
    }
    s.sqrt()
}

/// Annihilates `m[(p, q)]` with a unitary rotation, updating `m` and the
/// accumulated eigenvector matrix `v`.
fn jacobi_rotate(m: &mut Matrix, v: &mut Matrix, p: usize, q: usize) {
    let apq = m[(p, q)];
    let r = apq.abs();
    if r == 0.0 {
        return;
    }
    let app = m[(p, p)].re;
    let aqq = m[(q, q)].re;
    let phase = apq / r; // e^{iφ}

    // Solve r·(c² − s²) = c·s·(aqq − app) for t = s/c.
    let tau = (aqq - app) / (2.0 * r);
    let t = if tau >= 0.0 {
        1.0 / (tau + (1.0 + tau * tau).sqrt())
    } else {
        -1.0 / (-tau + (1.0 + tau * tau).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    let s = t * c;

    // U = [[c, s·e^{iφ}], [−s·e^{−iφ}, c]] acting on columns (p, q).
    let u_pp = c64::real(c);
    let u_pq = phase * s;
    let u_qp = -phase.conj() * s;
    let u_qq = c64::real(c);

    let n = m.rows();
    // m ← U† m U: first columns (m · U), then rows (U† · m).
    for i in 0..n {
        let mip = m[(i, p)];
        let miq = m[(i, q)];
        m[(i, p)] = mip * u_pp + miq * u_qp;
        m[(i, q)] = mip * u_pq + miq * u_qq;
    }
    for j in 0..n {
        let mpj = m[(p, j)];
        let mqj = m[(q, j)];
        m[(p, j)] = u_pp.conj() * mpj + u_qp.conj() * mqj;
        m[(q, j)] = u_pq.conj() * mpj + u_qq.conj() * mqj;
    }
    // Clean up rounding noise at the annihilated positions.
    m[(p, q)] = c64::ZERO;
    m[(q, p)] = c64::ZERO;
    m[(p, p)] = c64::real(m[(p, p)].re);
    m[(q, q)] = c64::real(m[(q, q)].re);

    // v ← v U.
    for i in 0..n {
        let vip = v[(i, p)];
        let viq = v[(i, q)];
        v[(i, p)] = vip * u_pp + viq * u_qp;
        v[(i, q)] = vip * u_pq + viq * u_qq;
    }
}

/// Sorts eigenpairs ascending by eigenvalue.
fn sort_eigh(m: Matrix, v: Matrix) -> Eigh {
    let n = m.rows();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        m[(a, a)]
            .re
            .partial_cmp(&m[(b, b)].re)
            .expect("NaN eigenvalue")
    });
    let values: Vec<f64> = order.iter().map(|&i| m[(i, i)].re).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for i in 0..n {
            vectors[(i, new_col)] = v[(i, old_col)];
        }
    }
    Eigh { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &Eigh) -> Matrix {
        let lambda = Matrix::diag(&e.values.iter().map(|&x| c64::real(x)).collect::<Vec<_>>());
        e.vectors.matmul(&lambda).matmul(&e.vectors.dagger())
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let d = Matrix::diag(&[c64::real(-2.0), c64::real(0.5), c64::real(3.0)]);
        let e = eigh(&d);
        assert_eq!(e.values, vec![-2.0, 0.5, 3.0]);
    }

    #[test]
    fn pauli_y_eigenvalues() {
        let y = Matrix::from_rows(&[&[c64::ZERO, -c64::I], &[c64::I, c64::ZERO]]);
        let e = eigh(&y);
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        assert!(e.vectors.is_unitary(1e-12));
        assert!(reconstruct(&e).approx_eq(&y, 1e-12));
    }

    #[test]
    fn random_hermitian_reconstructs() {
        // Deterministic pseudo-random Hermitian matrix.
        let n = 8;
        let mut h = Matrix::zeros(n, n);
        let mut seed = 0x12345678u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        for i in 0..n {
            h[(i, i)] = c64::real(next());
            for j in (i + 1)..n {
                let z = c64::new(next(), next());
                h[(i, j)] = z;
                h[(j, i)] = z.conj();
            }
        }
        let e = eigh(&h);
        assert!(e.vectors.is_unitary(1e-10));
        assert!(reconstruct(&e).approx_eq(&h, 1e-10));
        for w in e.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12, "eigenvalues must be sorted");
        }
    }

    #[test]
    fn trace_equals_sum_of_eigenvalues() {
        let h = Matrix::from_rows(&[
            &[c64::real(2.0), c64::new(0.0, 1.0)],
            &[c64::new(0.0, -1.0), c64::real(-1.0)],
        ]);
        let e = eigh(&h);
        let sum: f64 = e.values.iter().sum();
        assert!((sum - h.trace().re).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "Hermitian")]
    fn rejects_non_hermitian() {
        let m = Matrix::from_rows(&[&[c64::ZERO, c64::ONE], &[c64::ZERO, c64::ZERO]]);
        let _ = eigh(&m);
    }
}
