//! Complex column vectors (quantum state amplitudes).

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::c64;

/// A dense complex column vector.
///
/// Used throughout the workspace for quantum state amplitudes; the
/// normalization convention is `‖v‖₂ = 1` for physical states, but the type
/// itself does not enforce it.
///
/// # Example
///
/// ```
/// use zz_linalg::{c64, Vector};
///
/// let plus = Vector::from_vec(vec![c64::real(1.0), c64::real(1.0)]).normalized();
/// assert!((plus.norm() - 1.0).abs() < 1e-15);
/// assert!((plus.dot(&plus).re - 1.0).abs() < 1e-15);
/// ```
#[derive(Clone, PartialEq)]
pub struct Vector {
    data: Vec<c64>,
}

impl Vector {
    /// Creates a vector of `n` zeros.
    pub fn zeros(n: usize) -> Self {
        Vector {
            data: vec![c64::ZERO; n],
        }
    }

    /// Creates the computational basis vector `|index⟩` of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim`.
    pub fn basis(dim: usize, index: usize) -> Self {
        assert!(
            index < dim,
            "basis index {index} out of range for dim {dim}"
        );
        let mut v = Vector::zeros(dim);
        v[index] = c64::ONE;
        v
    }

    /// Wraps an existing amplitude vector.
    pub fn from_vec(data: Vec<c64>) -> Self {
        Vector { data }
    }

    /// Vector length (Hilbert-space dimension).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the vector has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the amplitudes.
    #[inline]
    pub fn as_slice(&self) -> &[c64] {
        &self.data
    }

    /// Mutably borrows the amplitudes.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [c64] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying amplitudes.
    pub fn into_vec(self) -> Vec<c64> {
        self.data
    }

    /// Inner product `⟨self|rhs⟩` (conjugate-linear in `self`).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn dot(&self, rhs: &Vector) -> c64 {
        assert_eq!(self.len(), rhs.len(), "dot length mismatch");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a.conj() * b)
            .sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|z| z.abs_sq()).sum::<f64>().sqrt()
    }

    /// Returns a unit-norm copy.
    ///
    /// # Panics
    ///
    /// Panics if the vector is (numerically) zero.
    pub fn normalized(&self) -> Vector {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalize the zero vector");
        Vector {
            data: self.data.iter().map(|&z| z / n).collect(),
        }
    }

    /// Kronecker product `self ⊗ rhs` (tensor product of states).
    pub fn kron(&self, rhs: &Vector) -> Vector {
        let mut out = Vec::with_capacity(self.len() * rhs.len());
        for &a in &self.data {
            for &b in &rhs.data {
                out.push(a * b);
            }
        }
        Vector::from_vec(out)
    }

    /// State fidelity `|⟨self|rhs⟩|²` between two *normalized* states.
    pub fn fidelity(&self, rhs: &Vector) -> f64 {
        self.dot(rhs).abs_sq()
    }
}

impl Index<usize> for Vector {
    type Output = c64;
    #[inline]
    fn index(&self, i: usize) -> &c64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut c64 {
        &mut self.data[i]
    }
}

impl FromIterator<c64> for Vector {
    fn from_iter<I: IntoIterator<Item = c64>>(iter: I) -> Self {
        Vector {
            data: iter.into_iter().collect(),
        }
    }
}

impl fmt::Debug for Vector {
    /// Compact representation: at most the first 8 amplitudes are shown.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vector[{}](", self.len())?;
        for (i, z) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if i >= 8 {
                write!(f, "…")?;
                break;
            }
            write!(f, "{:+.3}{:+.3}i", z.re, z.im)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_vectors_are_orthonormal() {
        let e0 = Vector::basis(4, 0);
        let e3 = Vector::basis(4, 3);
        assert_eq!(e0.dot(&e0), c64::ONE);
        assert_eq!(e0.dot(&e3), c64::ZERO);
    }

    #[test]
    fn kron_of_basis_states() {
        let e1 = Vector::basis(2, 1);
        let e0 = Vector::basis(2, 0);
        let e10 = e1.kron(&e0);
        assert_eq!(e10[2], c64::ONE); // |10⟩ = index 2
        assert_eq!(e10.norm(), 1.0);
    }

    #[test]
    fn normalized_has_unit_norm() {
        let v = Vector::from_vec(vec![c64::new(3.0, 0.0), c64::new(0.0, 4.0)]);
        assert!((v.normalized().norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn fidelity_of_orthogonal_states_is_zero() {
        let e0 = Vector::basis(2, 0);
        let e1 = Vector::basis(2, 1);
        assert_eq!(e0.fidelity(&e1), 0.0);
        assert_eq!(e0.fidelity(&e0), 1.0);
    }

    #[test]
    #[should_panic(expected = "cannot normalize the zero vector")]
    fn normalizing_zero_panics() {
        let _ = Vector::zeros(3).normalized();
    }
}
