//! Dense complex linear algebra for small quantum systems.
//!
//! This crate is the numerical substrate of the `zz-*` workspace. It provides
//! exactly the operations that Hamiltonian-level simulation of few-qubit
//! systems needs, implemented from scratch and tuned for matrices of
//! dimension ≤ 64:
//!
//! * [`c64`] — a `Copy` complex number with full arithmetic,
//! * [`Matrix`] — a dense row-major complex matrix with products, adjoints,
//!   Kronecker products and norms,
//! * [`Vector`] — a complex column vector (quantum state amplitudes),
//! * [`eig::eigh`] — Hermitian eigendecomposition (cyclic complex Jacobi),
//! * [`expm`] — unitary matrix exponentials `exp(-i H t)`, both via
//!   eigendecomposition and via scaled Taylor series for propagation loops.
//!
//! # Example
//!
//! ```
//! use zz_linalg::{c64, Matrix};
//!
//! // exp(-i (π/2) X) is -i X up to numerical error.
//! let x = Matrix::from_rows(&[
//!     &[c64::ZERO, c64::ONE],
//!     &[c64::ONE, c64::ZERO],
//! ]);
//! let u = zz_linalg::expm::expm_neg_i_h_t(&x, std::f64::consts::FRAC_PI_2);
//! let expected = x.scale(c64::new(0.0, -1.0));
//! assert!(u.approx_eq(&expected, 1e-12));
//! ```

#![warn(missing_docs)]

mod complex;
pub mod eig;
pub mod expm;
mod matrix;
mod vector;

pub use complex::c64;
pub use matrix::Matrix;
pub use vector::Vector;

/// Default absolute tolerance used by approximate comparisons in this crate.
pub const DEFAULT_TOL: f64 = 1e-10;
