//! Drive-noise models: carrier-frequency detuning and amplitude
//! fluctuation (paper Fig 17).

use zz_linalg::Matrix;
use zz_quantum::embed;
use zz_quantum::fidelity::average_gate_infidelity;
use zz_quantum::pauli::{Pauli, PauliString};

use crate::propagate::TimeDependentHamiltonian;
use crate::systems::{QubitDrive, STEPS_PER_NS};

/// A drive subject to noise: carrier detuning `Δf` (rad/ns, added as a
/// `Δf/2·σz` term in the drive's rotating frame) and a relative amplitude
/// error (e.g. `0.001` for 0.1% fluctuation, applied as a worst-case
/// constant scale).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DriveNoise {
    /// Carrier detuning in rad/ns.
    pub detuning: f64,
    /// Relative amplitude error (dimensionless).
    pub amplitude_error: f64,
}

impl DriveNoise {
    /// No noise.
    pub fn none() -> Self {
        DriveNoise::default()
    }

    /// Detuning-only noise, in MHz.
    pub fn detuning_mhz(f: f64) -> Self {
        DriveNoise {
            detuning: crate::mhz(f),
            amplitude_error: 0.0,
        }
    }

    /// Amplitude-only noise, as a fraction (0.001 = 0.1%).
    pub fn amplitude(fraction: f64) -> Self {
        DriveNoise {
            detuning: 0.0,
            amplitude_error: fraction,
        }
    }
}

/// Figure 17 measure: infidelity of a noisy single-qubit pulse (with
/// spectator crosstalk `λ`) against `target ⊗ I`.
pub fn infidelity_1q_noisy(
    drive: &QubitDrive<'_>,
    target: &Matrix,
    lambda: f64,
    noise: DriveNoise,
) -> f64 {
    let duration = drive.duration();
    let scale = 1.0 + noise.amplitude_error;
    let mut h_static = PauliString::zz(2, 0, 1)
        .matrix()
        .scale(zz_linalg::c64::real(lambda));
    h_static.add_scaled(
        &embed(&Pauli::Z.matrix(), &[0], 2),
        zz_linalg::c64::real(noise.detuning / 2.0),
    );
    let mut h = TimeDependentHamiltonian::new(h_static);
    h.add_control(embed(&Pauli::X.matrix(), &[0], 2), move |t| {
        scale * drive.x.value(t)
    });
    h.add_control(embed(&Pauli::Y.matrix(), &[0], 2), move |t| {
        scale * drive.y.value(t)
    });
    let u = h.propagate(duration, (duration * STEPS_PER_NS) as usize);
    average_gate_infidelity(&u, &target.kron(&Matrix::identity(2)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{GaussianPulse, ZeroPulse};
    use crate::mhz;
    use zz_quantum::gates;

    #[test]
    fn zero_noise_matches_clean_infidelity() {
        let x = GaussianPulse::with_rotation(std::f64::consts::FRAC_PI_2, 20.0);
        let y = ZeroPulse::new(20.0);
        let drive = QubitDrive { x: &x, y: &y };
        let clean = crate::systems::infidelity_1q(&drive, &gates::x90(), mhz(0.3));
        let noisy = infidelity_1q_noisy(&drive, &gates::x90(), mhz(0.3), DriveNoise::none());
        assert!((clean - noisy).abs() < 1e-12);
    }

    #[test]
    fn detuning_hurts_fidelity() {
        let x = GaussianPulse::with_rotation(std::f64::consts::FRAC_PI_2, 20.0);
        let y = ZeroPulse::new(20.0);
        let drive = QubitDrive { x: &x, y: &y };
        let base = infidelity_1q_noisy(&drive, &gates::x90(), 0.0, DriveNoise::none());
        let detuned =
            infidelity_1q_noisy(&drive, &gates::x90(), 0.0, DriveNoise::detuning_mhz(1.0));
        assert!(detuned > base + 1e-6, "{detuned} !> {base}");
    }

    #[test]
    fn amplitude_error_hurts_less_than_detuning() {
        // 0.1% amplitude error is a much smaller perturbation than 1 MHz
        // detuning on a 20 ns pulse (paper Fig 17 shows the same ordering).
        let x = GaussianPulse::with_rotation(std::f64::consts::FRAC_PI_2, 20.0);
        let y = ZeroPulse::new(20.0);
        let drive = QubitDrive { x: &x, y: &y };
        let amp = infidelity_1q_noisy(&drive, &gates::x90(), 0.0, DriveNoise::amplitude(0.001));
        let det = infidelity_1q_noisy(&drive, &gates::x90(), 0.0, DriveNoise::detuning_mhz(1.0));
        assert!(amp < det);
    }
}
