//! Factory-calibrated pulses for the native gates under each method.
//!
//! The Fourier coefficients below were produced by this repository's own
//! optimizer (`cargo run -p zz-pulse --bin calibrate --release`) and pasted
//! in, so that tests and benchmarks do not pay the optimization cost on
//! every run. The quality tests at the bottom verify the shipped pulses
//! still implement their gates and suppress first-order ZZ.

use zz_linalg::Matrix;

use crate::dcg;
use crate::envelope::{Envelope, FourierPulse, GaussianPulse, ZeroPulse};
use crate::optimize::BASIS;

/// Pulse durations (ns) of the calibrated single-qubit library.
pub const X90_DURATION: f64 = 20.0;
/// Identity pulse duration for the Fourier-optimized methods.
pub const ID_DURATION: f64 = 20.0;
/// Two-qubit `ZX90` pulse duration (the paper sets `T = 20 ns`).
pub const ZX90_DURATION: f64 = 20.0;

/// A pulse-optimization method (paper Sec 7.1.1) plus the unoptimized
/// Gaussian reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PulseMethod {
    /// Plain Gaussian pulses — no ZZ suppression (the baseline).
    Gaussian,
    /// Quantum optimal control against the λ-averaged fidelity.
    OptCtrl,
    /// First-order perturbative cancellation (the paper's proposal).
    Pert,
    /// Dynamically corrected gates from Gaussian segments.
    Dcg,
}

impl PulseMethod {
    /// All four methods.
    pub const ALL: [PulseMethod; 4] = [
        PulseMethod::Gaussian,
        PulseMethod::OptCtrl,
        PulseMethod::Pert,
        PulseMethod::Dcg,
    ];
}

/// The figure label ("Gaussian", "OptCtrl", "Pert", "DCG") — also part of
/// the on-disk calibration-key format (`zz_core::calib`), so the names
/// are stable.
impl std::fmt::Display for PulseMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PulseMethod::Gaussian => "Gaussian",
            PulseMethod::OptCtrl => "OptCtrl",
            PulseMethod::Pert => "Pert",
            PulseMethod::Dcg => "DCG",
        })
    }
}

// ------------------------------------------------------------------
// Calibrated coefficients (regenerate with the `calibrate` binary).
// Layout: [Ωx A₁..A₅, Ωy A₁..A₅] (rad/ns).
// ------------------------------------------------------------------

/// Pert-optimized `X90` coefficients.
pub const PERT_X90: [f64; 2 * BASIS] = [
    -6.379795436303e-2,
    3.445022170688e-1,
    6.596379681798e-2,
    2.525392816913e-2,
    2.015028785533e-2,
    2.345372920158e-3,
    1.410816943453e-2,
    1.636092040301e-3,
    1.500922122119e-3,
    1.199161939501e-3,
];
/// Pert-optimized identity (`Rx(2π)`-class) coefficients.
pub const PERT_ID: [f64; 2 * BASIS] = [
    3.719705866942e-3,
    1.905648066607e-1,
    4.668276821242e-2,
    3.599656181536e-2,
    3.627003975146e-2,
    -1.198116223436e-3,
    5.056120788433e-2,
    -4.497610750991e-3,
    -1.360637165653e-2,
    -4.512982720735e-3,
];
/// OptCtrl-optimized `X90` coefficients.
pub const OPTCTRL_X90: [f64; 2 * BASIS] = [
    1.146038285045e-1,
    1.868906968958e-1,
    4.423124361124e-2,
    2.578052366321e-2,
    1.681127202174e-2,
    3.077688720537e-2,
    1.289473250973e-2,
    4.984710471596e-3,
    3.020914713013e-3,
    1.949569507424e-3,
];
/// OptCtrl-optimized identity coefficients.
pub const OPTCTRL_ID: [f64; 2 * BASIS] = [
    2.114786492444e-1,
    7.493388635236e-2,
    9.851809875620e-3,
    9.617599324621e-3,
    8.073511936562e-3,
    -3.063156636227e-3,
    -1.040305243987e-3,
    -2.505471792702e-4,
    -1.356237392077e-4,
    -8.465958172631e-5,
];
/// Pert-optimized `ZX90` coefficients
/// (`[Ωx_a, Ωy_a, Ωx_b, Ωy_b, Ω_ab]`, 5 coefficients each).
pub const PERT_ZX90: [f64; 5 * BASIS] = [
    2.564515732832e-2,
    2.923927338607e-1,
    -1.771378859692e-1,
    -1.350990948305e-1,
    -1.269136315697e-1,
    -3.171983355028e-2,
    -3.856912589122e-1,
    2.377744415995e-1,
    2.195374359175e-1,
    1.258861869821e-1,
    1.260983948142e-2,
    2.482947352475e-2,
    -6.628881198643e-3,
    -1.662431934800e-2,
    -1.418575373137e-2,
    2.215768570286e-5,
    -2.252165332911e-5,
    4.451843625007e-5,
    4.871174796493e-5,
    -2.813288565764e-4,
    -1.037093062863e-2,
    1.403046536267e-1,
    1.249149444109e-1,
    2.104836277152e-1,
    1.812516223002e-1,
];
/// OptCtrl-optimized `ZX90` coefficients (warm-started from the Pert
/// solution and refined against the λ-averaged fidelity).
pub const OPTCTRL_ZX90: [f64; 5 * BASIS] = [
    2.570876208971e-2,
    2.923357652745e-1,
    -1.772350178761e-1,
    -1.330146314663e-1,
    -1.292921784111e-1,
    -3.184804112199e-2,
    -3.859218180432e-1,
    2.382564327972e-1,
    2.198128949497e-1,
    1.259560556050e-1,
    1.260969300307e-2,
    2.482738805748e-2,
    -6.627779120794e-3,
    -1.662394846095e-2,
    -1.418529281988e-2,
    9.851373883648e-6,
    1.479799311566e-4,
    -3.842973395848e-6,
    4.652071920633e-4,
    7.677688330847e-4,
    -1.048795680426e-2,
    1.399721301986e-1,
    1.234622799433e-1,
    2.101750102547e-1,
    1.822835357773e-1,
];

/// An owned single-qubit drive: the two quadrature envelopes.
pub struct CalibratedDrive {
    /// In-phase envelope.
    pub x: Box<dyn Envelope + Send + Sync>,
    /// Quadrature envelope.
    pub y: Box<dyn Envelope + Send + Sync>,
}

impl CalibratedDrive {
    /// Borrowed view usable with the [`crate::systems`] evaluators.
    pub fn as_drive(&self) -> crate::systems::QubitDrive<'_> {
        crate::systems::QubitDrive {
            x: self.x.as_ref(),
            y: self.y.as_ref(),
        }
    }

    /// Pulse duration.
    pub fn duration(&self) -> f64 {
        self.x.duration().max(self.y.duration())
    }
}

/// An owned two-qubit drive (for `ZX90`).
pub struct CalibratedTwoQubitDrive {
    /// Drive on the control qubit.
    pub a: CalibratedDrive,
    /// Drive on the target qubit.
    pub b: CalibratedDrive,
    /// Coupling envelope.
    pub coupling: Box<dyn Envelope + Send + Sync>,
}

impl CalibratedTwoQubitDrive {
    /// Borrowed view usable with the [`crate::systems`] evaluators.
    pub fn as_drive(&self) -> crate::systems::TwoQubitDrive<'_> {
        crate::systems::TwoQubitDrive {
            a: self.a.as_drive(),
            b: self.b.as_drive(),
            coupling: self.coupling.as_ref(),
        }
    }
}

fn fourier_drive(coeffs: &[f64], duration: f64) -> CalibratedDrive {
    CalibratedDrive {
        x: Box::new(FourierPulse::new(coeffs[..BASIS].to_vec(), duration)),
        y: Box::new(FourierPulse::new(coeffs[BASIS..].to_vec(), duration)),
    }
}

/// The calibrated `X90` drive for a method.
pub fn x90_drive(method: PulseMethod) -> CalibratedDrive {
    match method {
        PulseMethod::Gaussian => CalibratedDrive {
            x: Box::new(GaussianPulse::with_rotation(
                std::f64::consts::FRAC_PI_2,
                X90_DURATION,
            )),
            y: Box::new(ZeroPulse::new(X90_DURATION)),
        },
        PulseMethod::OptCtrl => fourier_drive(&OPTCTRL_X90, X90_DURATION),
        PulseMethod::Pert => fourier_drive(&PERT_X90, X90_DURATION),
        PulseMethod::Dcg => CalibratedDrive {
            x: Box::new(dcg::dcg_x90()),
            y: Box::new(ZeroPulse::new(120.0)),
        },
    }
}

/// The calibrated identity drive for a method. The identity gate is
/// `I = Rx(2π)` (paper Sec 7.1.2) for every method; even the plain Gaussian
/// version echoes away some ZZ by sweeping the qubit through a full
/// rotation, which is why `Gau+ZZXSched` already helps in Figure 21.
pub fn id_drive(method: PulseMethod) -> CalibratedDrive {
    match method {
        PulseMethod::Gaussian => CalibratedDrive {
            x: Box::new(GaussianPulse::with_rotation(
                2.0 * std::f64::consts::PI,
                ID_DURATION,
            )),
            y: Box::new(ZeroPulse::new(ID_DURATION)),
        },
        PulseMethod::OptCtrl => fourier_drive(&OPTCTRL_ID, ID_DURATION),
        PulseMethod::Pert => fourier_drive(&PERT_ID, ID_DURATION),
        PulseMethod::Dcg => CalibratedDrive {
            x: Box::new(dcg::dcg_id()),
            y: Box::new(ZeroPulse::new(40.0)),
        },
    }
}

/// The calibrated `ZX90` drive for a method, or `None` for DCG (the paper
/// leaves the two-qubit DCG sequence unimplemented; Sec 7.2.2).
pub fn zx90_drive(method: PulseMethod) -> Option<CalibratedTwoQubitDrive> {
    let zero = || -> CalibratedDrive {
        CalibratedDrive {
            x: Box::new(ZeroPulse::new(ZX90_DURATION)),
            y: Box::new(ZeroPulse::new(ZX90_DURATION)),
        }
    };
    match method {
        PulseMethod::Gaussian => Some(CalibratedTwoQubitDrive {
            a: zero(),
            b: zero(),
            coupling: Box::new(GaussianPulse::with_rotation(
                std::f64::consts::FRAC_PI_2,
                ZX90_DURATION,
            )),
        }),
        PulseMethod::OptCtrl => Some(two_qubit_from(&OPTCTRL_ZX90)),
        PulseMethod::Pert => Some(two_qubit_from(&PERT_ZX90)),
        PulseMethod::Dcg => None,
    }
}

fn two_qubit_from(coeffs: &[f64]) -> CalibratedTwoQubitDrive {
    let seg = |k: usize| coeffs[k * BASIS..(k + 1) * BASIS].to_vec();
    CalibratedTwoQubitDrive {
        a: CalibratedDrive {
            x: Box::new(FourierPulse::new(seg(0), ZX90_DURATION)),
            y: Box::new(FourierPulse::new(seg(1), ZX90_DURATION)),
        },
        b: CalibratedDrive {
            x: Box::new(FourierPulse::new(seg(2), ZX90_DURATION)),
            y: Box::new(FourierPulse::new(seg(3), ZX90_DURATION)),
        },
        coupling: Box::new(FourierPulse::new(seg(4), ZX90_DURATION)),
    }
}

/// The gate unitary each drive is calibrated against.
pub fn x90_target() -> Matrix {
    zz_quantum::gates::x90()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mhz;
    use crate::systems::{infidelity_1q, residual_zz_rate};
    use zz_quantum::gates;

    #[test]
    fn gaussian_library_pulses_implement_their_gates() {
        let drive = x90_drive(PulseMethod::Gaussian);
        let inf = infidelity_1q(&drive.as_drive(), &gates::x90(), 0.0);
        assert!(inf < 1e-9, "Gaussian X90 broken: {inf}");
    }

    #[test]
    fn dcg_library_pulses_implement_their_gates() {
        let drive = x90_drive(PulseMethod::Dcg);
        let inf = infidelity_1q(&drive.as_drive(), &gates::x90(), 0.0);
        assert!(inf < 1e-8, "DCG X90 broken: {inf}");
    }

    #[test]
    fn optimized_x90_pulses_implement_their_gates() {
        for method in [PulseMethod::OptCtrl, PulseMethod::Pert] {
            let drive = x90_drive(method);
            let inf = infidelity_1q(&drive.as_drive(), &gates::x90(), 0.0);
            assert!(inf < 1e-4, "{method} X90 broken: {inf}");
        }
    }

    #[test]
    fn optimized_id_pulses_implement_identity() {
        for method in [PulseMethod::OptCtrl, PulseMethod::Pert] {
            let drive = id_drive(method);
            let inf = infidelity_1q(&drive.as_drive(), &Matrix::identity(2), 0.0);
            assert!(inf < 1e-4, "{method} I broken: {inf}");
        }
    }

    #[test]
    fn optimized_pulses_suppress_zz_at_device_strength() {
        let lambda = mhz(0.2);
        let gauss = residual_zz_rate(&x90_drive(PulseMethod::Gaussian).as_drive(), lambda);
        // OptCtrl is the indirect suppressor (Fig 16); the first-order
        // methods cancel far more.
        let r_opt = residual_zz_rate(&x90_drive(PulseMethod::OptCtrl).as_drive(), lambda);
        assert!(
            r_opt < gauss / 3.0,
            "OptCtrl X90 residual {r_opt} vs Gaussian {gauss}"
        );
        for method in [PulseMethod::Pert, PulseMethod::Dcg] {
            let r = residual_zz_rate(&x90_drive(method).as_drive(), lambda);
            assert!(
                r < gauss / 100.0,
                "{method} X90 residual {r} not well below Gaussian {gauss}"
            );
        }
    }

    #[test]
    fn pert_beats_optctrl_on_first_order_term() {
        // The paper's key claim for the Pert objective (Fig 16).
        let lambda = mhz(0.2);
        let pert = infidelity_1q(
            &x90_drive(PulseMethod::Pert).as_drive(),
            &gates::x90(),
            lambda,
        );
        let opt = infidelity_1q(
            &x90_drive(PulseMethod::OptCtrl).as_drive(),
            &gates::x90(),
            lambda,
        );
        assert!(
            pert <= opt * 2.0,
            "Pert {pert} should be at least comparable to OptCtrl {opt}"
        );
    }

    #[test]
    fn zx90_drives_implement_the_gate() {
        for method in [
            PulseMethod::Gaussian,
            PulseMethod::OptCtrl,
            PulseMethod::Pert,
        ] {
            let d = zx90_drive(method).expect("available");
            let u = crate::systems::evolve_2q_ctrl(&d.as_drive(), 0.0);
            let inf = 1.0 - zz_quantum::fidelity::average_gate_fidelity(&u, &gates::zx90());
            assert!(inf < 1e-4, "{method} ZX90 broken: infidelity {inf}");
        }
        assert!(zx90_drive(PulseMethod::Dcg).is_none());
    }

    #[test]
    fn optimized_zx90_suppresses_spectator_zz() {
        let lambda = mhz(0.2);
        let measure = |method: PulseMethod| -> f64 {
            let d = zx90_drive(method).expect("available");
            crate::systems::infidelity_2q(&d.as_drive(), lambda, lambda, lambda)
        };
        let gauss = measure(PulseMethod::Gaussian);
        let pert = measure(PulseMethod::Pert);
        assert!(
            pert < gauss / 5.0,
            "Pert ZX90 {pert} must be well below Gaussian {gauss}"
        );
    }
}
