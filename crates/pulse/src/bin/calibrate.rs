//! Regenerates the factory pulse library (`zz_pulse::library`).
//!
//! Runs the OptCtrl and Pert optimizations for `X90`, `I` and `ZX90` and
//! prints the resulting coefficient arrays as Rust constants, ready to be
//! pasted into `crates/pulse/src/library.rs`.
//!
//! Usage: `cargo run -p zz-pulse --bin calibrate --release [-- quick]`

use zz_linalg::Matrix;
use zz_pulse::mhz;
use zz_pulse::optimize::{
    amplitude_penalty, initial_1q, initial_2q, minimize, optctrl_1q_loss, optctrl_2q_loss,
    pert_1q_loss, pert_2q_loss, pulse_quality_1q, pulse_quality_2q, AdamConfig, BASIS,
};

/// Weight of the amplitude/bandwidth regularizer for single-qubit pulses
/// (tuned so the resulting waveforms stay within ≈ ±50 MHz and remain
/// DRAG-correctable on a five-level transmon).
const AMP_REG: f64 = 0.02;

fn print_const(name: &str, v: &[f64]) {
    print!("pub const {name}: [f64; {}] = [", v.len());
    for (i, x) in v.iter().enumerate() {
        if i % 5 == 0 {
            print!("\n    ");
        }
        print!("{x:.12e}, ");
    }
    println!("\n];");
}

fn main() {
    let quick = std::env::args().any(|a| a == "quick");
    let iters_1q = if quick { 150 } else { 1500 };
    let iters_2q = if quick { 100 } else { 800 };
    let lambdas: Vec<f64> = [0.5, 1.0, 1.5, 2.0].iter().map(|&f| mhz(f)).collect();

    let x90 = zz_quantum::gates::x90();
    let id = Matrix::identity(2);

    // ---- Pert X90 ----
    let cfg = AdamConfig {
        lr: 0.004,
        iters: iters_1q,
        ..Default::default()
    };
    let (pert_x90, loss) = stage_1q(
        "PERT_X90",
        &x90,
        std::f64::consts::FRAC_PI_2,
        |p| pert_1q_loss(p, &x90, 20.0, 50.0) + AMP_REG * amplitude_penalty(p),
        &cfg,
    );
    report_1q("PERT_X90", &pert_x90, &x90, loss);

    // ---- Pert I ----
    let (pert_id, loss) = stage_1q(
        "PERT_ID",
        &id,
        2.0 * std::f64::consts::PI,
        |p| pert_1q_loss(p, &id, 20.0, 50.0) + AMP_REG * amplitude_penalty(p),
        &cfg,
    );
    report_1q("PERT_ID", &pert_id, &id, loss);

    // ---- OptCtrl X90 ----
    let (optctrl_x90, loss) = stage_1q(
        "OPTCTRL_X90",
        &x90,
        std::f64::consts::FRAC_PI_2,
        |p| optctrl_1q_loss(p, &x90, 20.0, 2.0, &lambdas) + AMP_REG * amplitude_penalty(p),
        &cfg,
    );
    report_1q("OPTCTRL_X90", &optctrl_x90, &x90, loss);

    // ---- OptCtrl I ----
    let (optctrl_id, loss) = stage_1q(
        "OPTCTRL_ID",
        &id,
        2.0 * std::f64::consts::PI,
        |p| optctrl_1q_loss(p, &id, 20.0, 2.0, &lambdas) + AMP_REG * amplitude_penalty(p),
        &cfg,
    );
    report_1q("OPTCTRL_ID", &optctrl_id, &id, loss);

    // ---- Pert ZX90 ----
    let cfg2 = AdamConfig {
        lr: 0.004,
        iters: iters_2q,
        ..Default::default()
    };
    eprintln!("optimizing PERT_ZX90 ({} iters)…", cfg2.iters);
    let p0 = initial_2q(20.0);
    let (pert_zx90, loss) = minimize(|p| pert_2q_loss(p, 20.0, 50.0), &p0, &cfg2);
    let (ge, fo) = pulse_quality_2q(&pert_zx90, 20.0);
    eprintln!("PERT_ZX90: loss={loss:.3e} gate_err={ge:.3e} first_order={fo:.3e}");
    print_const("PERT_ZX90", &pert_zx90);

    // ---- OptCtrl ZX90 ----
    let lambdas_2q: Vec<f64> = [0.5, 1.5].iter().map(|&f| mhz(f)).collect();
    eprintln!("optimizing OPTCTRL_ZX90 ({} iters)…", cfg2.iters);
    let (optctrl_zx90, loss) = minimize(
        |p| optctrl_2q_loss(p, 20.0, 2.0, &lambdas_2q, mhz(0.2)),
        &pert_zx90, // warm-start from the Pert solution
        &AdamConfig {
            lr: 0.002,
            iters: iters_2q / 2,
            ..cfg2
        },
    );
    let (ge, fo) = pulse_quality_2q(&optctrl_zx90, 20.0);
    eprintln!("OPTCTRL_ZX90: loss={loss:.3e} gate_err={ge:.3e} first_order={fo:.3e}");
    print_const("OPTCTRL_ZX90", &optctrl_zx90);
}

fn stage_1q(
    name: &str,
    _target: &Matrix,
    theta: f64,
    loss: impl Fn(&[f64]) -> f64,
    cfg: &AdamConfig,
) -> (Vec<f64>, f64) {
    eprintln!("optimizing {name} ({} iters)…", cfg.iters);
    let p0 = initial_1q(theta, 20.0);
    // Two restarts with perturbed seeds; keep the best.
    let (mut best_p, mut best_l) = minimize(&loss, &p0, cfg);
    for swing in [1.5, -1.0] {
        let mut seed = p0.clone();
        seed[1] += swing * std::f64::consts::PI / 20.0;
        seed[BASIS] += 0.02 * swing;
        let (p, l) = minimize(&loss, &seed, cfg);
        if l < best_l {
            best_l = l;
            best_p = p;
        }
    }
    (best_p, best_l)
}

fn report_1q(name: &str, params: &[f64], target: &Matrix, loss: f64) {
    let (gate_err, first_order) = pulse_quality_1q(params, target, 20.0);
    eprintln!("{name}: loss={loss:.3e} gate_err={gate_err:.3e} first_order={first_order:.3e}");
    print_const(name, params);
}
