//! Pulse envelopes.

/// A time-dependent drive amplitude `Ω(t)` on `[0, duration]`.
///
/// Envelopes report an analytic derivative so the DRAG correction
/// (`Ω_y ∝ −Ω̇_x/α`) needs no numerical differentiation.
pub trait Envelope {
    /// Amplitude at time `t` (rad/ns); zero outside `[0, duration]`.
    fn value(&self, t: f64) -> f64;
    /// Time derivative at `t` (rad/ns²).
    fn derivative(&self, t: f64) -> f64;
    /// Total length of the envelope (ns).
    fn duration(&self) -> f64;

    /// Numerically integrated pulse area `∫Ω dt` (rad). Under the
    /// convention `H = Ω(t)σx`, an area of `θ/2` realizes `Rx(θ)`.
    fn area(&self) -> f64 {
        let steps = 2000;
        let dt = self.duration() / steps as f64;
        (0..steps)
            .map(|k| self.value((k as f64 + 0.5) * dt) * dt)
            .sum()
    }
}

/// A truncated Gaussian with baseline subtraction so the amplitude is
/// exactly zero at both ends — the default pulse shape on IBMQ-style
/// devices, used by the paper as the *unoptimized* reference.
#[derive(Clone, Debug, PartialEq)]
pub struct GaussianPulse {
    amplitude: f64,
    sigma: f64,
    duration: f64,
}

impl GaussianPulse {
    /// A Gaussian of the given peak `amplitude` and `duration`, with
    /// `σ = duration/4` (a common hardware choice).
    pub fn new(amplitude: f64, duration: f64) -> Self {
        GaussianPulse {
            amplitude,
            sigma: duration / 4.0,
            duration,
        }
    }

    /// The Gaussian whose area is exactly `θ/2`, i.e. which implements
    /// `Rx(θ)` under `H = Ω(t)σx`.
    ///
    /// # Example
    ///
    /// ```
    /// use zz_pulse::envelope::{Envelope, GaussianPulse};
    ///
    /// let p = GaussianPulse::with_rotation(std::f64::consts::PI, 20.0);
    /// assert!((p.area() - std::f64::consts::PI / 2.0).abs() < 1e-6);
    /// ```
    pub fn with_rotation(theta: f64, duration: f64) -> Self {
        let unit = GaussianPulse::new(1.0, duration);
        let area = unit.area();
        GaussianPulse::new(theta / 2.0 / area, duration)
    }

    fn baseline(&self) -> f64 {
        let c = self.duration / 2.0;
        (-(c * c) / (2.0 * self.sigma * self.sigma)).exp()
    }
}

impl Envelope for GaussianPulse {
    fn value(&self, t: f64) -> f64 {
        if !(0.0..=self.duration).contains(&t) {
            return 0.0;
        }
        let c = self.duration / 2.0;
        let g = (-((t - c) * (t - c)) / (2.0 * self.sigma * self.sigma)).exp();
        let b = self.baseline();
        self.amplitude * (g - b) / (1.0 - b)
    }

    fn derivative(&self, t: f64) -> f64 {
        if !(0.0..=self.duration).contains(&t) {
            return 0.0;
        }
        let c = self.duration / 2.0;
        let g = (-((t - c) * (t - c)) / (2.0 * self.sigma * self.sigma)).exp();
        let b = self.baseline();
        self.amplitude * g * (-(t - c) / (self.sigma * self.sigma)) / (1.0 - b)
    }

    fn duration(&self) -> f64 {
        self.duration
    }
}

/// The paper's Fourier-cosine ansatz (Appendix A):
///
/// `Ω(A, t) = Σ_j A_j/2 · (1 + cos(2πj·t/T − π)) = Σ_j A_j/2 · (1 − cos(2πj·t/T))`
///
/// — smooth, zero at both ends, narrow-band, and linear in the optimizable
/// coefficients `A`.
#[derive(Clone, Debug, PartialEq)]
pub struct FourierPulse {
    coeffs: Vec<f64>,
    duration: f64,
}

impl FourierPulse {
    /// Creates the pulse from its Fourier coefficients (rad/ns).
    pub fn new(coeffs: Vec<f64>, duration: f64) -> Self {
        FourierPulse { coeffs, duration }
    }

    /// The optimizable coefficients.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Exact area: each basis term integrates to `T/2`.
    pub fn exact_area(&self) -> f64 {
        self.coeffs.iter().sum::<f64>() * self.duration / 2.0
    }
}

impl Envelope for FourierPulse {
    fn value(&self, t: f64) -> f64 {
        if !(0.0..=self.duration).contains(&t) {
            return 0.0;
        }
        let w = 2.0 * std::f64::consts::PI / self.duration;
        self.coeffs
            .iter()
            .enumerate()
            .map(|(i, &a)| a / 2.0 * (1.0 - ((i + 1) as f64 * w * t).cos()))
            .sum()
    }

    fn derivative(&self, t: f64) -> f64 {
        if !(0.0..=self.duration).contains(&t) {
            return 0.0;
        }
        let w = 2.0 * std::f64::consts::PI / self.duration;
        self.coeffs
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let j = (i + 1) as f64;
                a / 2.0 * j * w * (j * w * t).sin()
            })
            .sum()
    }

    fn duration(&self) -> f64 {
        self.duration
    }
}

/// A zero drive of the given duration (idle qubit).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ZeroPulse {
    duration: f64,
}

impl ZeroPulse {
    /// Creates a zero envelope lasting `duration` ns.
    pub fn new(duration: f64) -> Self {
        ZeroPulse { duration }
    }
}

impl Envelope for ZeroPulse {
    fn value(&self, _t: f64) -> f64 {
        0.0
    }
    fn derivative(&self, _t: f64) -> f64 {
        0.0
    }
    fn duration(&self) -> f64 {
        self.duration
    }
}

/// Envelopes played back to back (used for DCG sequences).
pub struct SequencePulse {
    segments: Vec<Box<dyn Envelope + Send + Sync>>,
    /// Sign applied to each segment (for −π/2 style segments).
    signs: Vec<f64>,
}

impl SequencePulse {
    /// Creates a sequence from `(envelope, sign)` segments.
    pub fn new(segments: Vec<(Box<dyn Envelope + Send + Sync>, f64)>) -> Self {
        let (segments, signs) = segments.into_iter().unzip();
        SequencePulse { segments, signs }
    }
}

impl Envelope for SequencePulse {
    fn value(&self, t: f64) -> f64 {
        let mut offset = 0.0;
        for (seg, &sign) in self.segments.iter().zip(&self.signs) {
            let d = seg.duration();
            if t < offset + d {
                return sign * seg.value(t - offset);
            }
            offset += d;
        }
        0.0
    }

    fn derivative(&self, t: f64) -> f64 {
        let mut offset = 0.0;
        for (seg, &sign) in self.segments.iter().zip(&self.signs) {
            let d = seg.duration();
            if t < offset + d {
                return sign * seg.derivative(t - offset);
            }
            offset += d;
        }
        0.0
    }

    fn duration(&self) -> f64 {
        self.segments.iter().map(|s| s.duration()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_is_zero_at_edges() {
        let p = GaussianPulse::new(1.0, 20.0);
        assert!(p.value(0.0).abs() < 1e-12);
        assert!(p.value(20.0).abs() < 1e-12);
        assert!(p.value(10.0) > 0.9);
        assert_eq!(p.value(-1.0), 0.0);
        assert_eq!(p.value(21.0), 0.0);
    }

    #[test]
    fn gaussian_rotation_area() {
        let p = GaussianPulse::with_rotation(std::f64::consts::FRAC_PI_2, 20.0);
        assert!((p.area() - std::f64::consts::FRAC_PI_4).abs() < 1e-6);
    }

    #[test]
    fn gaussian_derivative_matches_finite_difference() {
        let p = GaussianPulse::new(0.3, 20.0);
        for t in [3.0, 7.5, 10.0, 16.0] {
            let fd = (p.value(t + 1e-6) - p.value(t - 1e-6)) / 2e-6;
            assert!((p.derivative(t) - fd).abs() < 1e-6, "at t={t}");
        }
    }

    #[test]
    fn fourier_zero_at_edges_and_area() {
        let p = FourierPulse::new(vec![0.1, -0.05, 0.02, 0.0, 0.01], 20.0);
        assert!(p.value(0.0).abs() < 1e-12);
        assert!(p.value(20.0).abs() < 1e-9);
        assert!((p.area() - p.exact_area()).abs() < 1e-6);
    }

    #[test]
    fn fourier_derivative_matches_finite_difference() {
        let p = FourierPulse::new(vec![0.1, -0.05, 0.02], 20.0);
        for t in [2.0, 9.0, 14.5] {
            let fd = (p.value(t + 1e-6) - p.value(t - 1e-6)) / 2e-6;
            assert!((p.derivative(t) - fd).abs() < 1e-5, "at t={t}");
        }
    }

    #[test]
    fn sequence_concatenates() {
        let seq = SequencePulse::new(vec![
            (
                Box::new(GaussianPulse::with_rotation(std::f64::consts::PI, 20.0)),
                1.0,
            ),
            (
                Box::new(GaussianPulse::with_rotation(std::f64::consts::PI, 20.0)),
                -1.0,
            ),
        ]);
        assert_eq!(seq.duration(), 40.0);
        assert!(
            (seq.value(10.0) + seq.value(30.0)).abs() < 1e-9,
            "second segment flipped"
        );
        assert!((seq.area()).abs() < 1e-6, "areas cancel");
    }
}
