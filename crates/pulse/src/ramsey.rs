//! Ramsey experiments on a simulated three-transmon line (paper Sec 7.4).
//!
//! The real device of the paper — three transmons `Q1–Q2–Q3` with always-on
//! ZZ coupling — is replaced by Hamiltonian-level simulation of the same
//! effective model (see `DESIGN.md`, substitution 1). The protocol measures
//! the *effective ZZ strength*: perform a Ramsey experiment on `Q2`
//! (`X90 · idle(τ) · Rz(δ·τ) · X90`, then measure `P(|1⟩)`) with the
//! neighbors prepared in `|0⟩` or `|1⟩`; the difference of the two fringe
//! frequencies is the ZZ strength that actually affects computation.
//!
//! Three circuits are compared (paper Fig 26):
//!
//! * **A** — original: `Q2` idles bare during τ;
//! * **B** — compiled I: identity pulses repeat on `Q2` during τ;
//! * **C** — compiled II: identity pulses repeat on `Q1` and `Q3` instead.

use zz_linalg::{Matrix, Vector};
use zz_quantum::pauli::{Pauli, PauliString};
use zz_quantum::{embed, gates, states};

use crate::library::{id_drive, CalibratedDrive, PulseMethod};
use crate::propagate::TimeDependentHamiltonian;
use crate::systems::STEPS_PER_NS;

/// Which of the paper's Figure-26 circuits to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RamseyCircuit {
    /// Original circuit: bare idling.
    Original,
    /// Compiled circuit I: protective identity pulses on `Q2`.
    IdOnQ2,
    /// Compiled circuit II: protective identity pulses on `Q1` and `Q3`.
    IdOnNeighbors,
}

impl RamseyCircuit {
    /// Figure label ("A", "B", "C").
    pub fn label(self) -> &'static str {
        match self {
            RamseyCircuit::Original => "A",
            RamseyCircuit::IdOnQ2 => "B",
            RamseyCircuit::IdOnNeighbors => "C",
        }
    }
}

/// Which neighbors couple to `Q2` in a given experiment group (Fig 27 a/b/c).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NeighborGroup {
    /// Only the `Q1–Q2` coupling is active (group a).
    Q1Only,
    /// Only the `Q2–Q3` coupling is active (group b).
    Q3Only,
    /// Both couplings are active (group c).
    Both,
}

/// Configuration of the simulated device and protocol.
#[derive(Clone, Copy, Debug)]
pub struct RamseyConfig {
    /// ZZ strength of the `Q1–Q2` coupling (rad/ns).
    pub lambda12: f64,
    /// ZZ strength of the `Q2–Q3` coupling (rad/ns).
    pub lambda23: f64,
    /// Artificial detuning δ applied as `Rz(δ·τ)` (rad/ns).
    pub detuning: f64,
    /// Identity-pulse method used by the compiled circuits.
    pub method: PulseMethod,
    /// Number of idle blocks to sweep (τ = block·duration·k).
    pub blocks: usize,
}

impl RamseyConfig {
    /// The paper's device: ~200 kHz effective ZZ per coupling
    /// (λ/2π = 50 kHz), 1 MHz artificial detuning, DCG identity pulses.
    pub fn paper_default() -> Self {
        RamseyConfig {
            lambda12: crate::khz(50.0),
            lambda23: crate::khz(50.0),
            detuning: crate::mhz(1.0),
            method: PulseMethod::Dcg,
            blocks: 192,
        }
    }
}

/// One Ramsey fringe: `(τ in ns, P(|1⟩) on Q2)` samples.
pub type Fringe = Vec<(f64, f64)>;

/// Runs the Ramsey protocol and returns the fringe.
///
/// `neighbors_excited` prepares the *active* neighbors in `|1⟩` (the ZZ
/// strength is extracted from the frequency difference between the
/// `false`/`true` fringes).
pub fn ramsey_fringe(
    circuit: RamseyCircuit,
    group: NeighborGroup,
    neighbors_excited: bool,
    cfg: &RamseyConfig,
) -> Fringe {
    let (l12, l23) = match group {
        NeighborGroup::Q1Only => (cfg.lambda12, 0.0),
        NeighborGroup::Q3Only => (0.0, cfg.lambda23),
        NeighborGroup::Both => (cfg.lambda12, cfg.lambda23),
    };

    // Idle-block propagator (8-dim, order [Q1, Q2, Q3]).
    let id = id_drive(cfg.method);
    let block = idle_block_propagator(circuit, &id, l12, l23);
    let block_duration = id.duration();

    // Initial state: active neighbors in |0⟩/|1⟩, Q2 after an ideal X90.
    let excited = |active: bool| -> Vector {
        if active && neighbors_excited {
            states::ket1()
        } else {
            states::ket0()
        }
    };
    let q1 = excited(matches!(group, NeighborGroup::Q1Only | NeighborGroup::Both));
    let q3 = excited(matches!(group, NeighborGroup::Q3Only | NeighborGroup::Both));
    let q2 = gates::x90().mul_vec(&states::ket0());
    let psi0 = q1.kron(&q2).kron(&q3);

    let x90_q2 = embed(&gates::x90(), &[1], 3);
    let mut fringe = Vec::with_capacity(cfg.blocks + 1);
    let mut psi = psi0.clone();
    for k in 0..=cfg.blocks {
        let tau = k as f64 * block_duration;
        // Rz(δ·τ) on Q2, then the second X90, then measure P(|1⟩ on Q2).
        let rz = embed(&gates::rz(cfg.detuning * tau), &[1], 3);
        let out = x90_q2.mul_vec(&rz.mul_vec(&psi));
        let p1: f64 = out
            .as_slice()
            .iter()
            .enumerate()
            .filter(|(i, _)| (i >> 1) & 1 == 1) // Q2 bit (middle of 3)
            .map(|(_, a)| a.abs_sq())
            .sum();
        fringe.push((tau, p1));
        psi = block.mul_vec(&psi);
    }
    fringe
}

/// Builds the 8-dim propagator for one idle block of the chosen circuit.
fn idle_block_propagator(
    circuit: RamseyCircuit,
    id: &CalibratedDrive,
    l12: f64,
    l23: f64,
) -> Matrix {
    let duration = id.duration();
    let mut h_static = PauliString::zz(3, 0, 1)
        .matrix()
        .scale(zz_linalg::c64::real(l12));
    h_static.add_scaled(
        &PauliString::zz(3, 1, 2).matrix(),
        zz_linalg::c64::real(l23),
    );
    let mut h = TimeDependentHamiltonian::new(h_static);
    let drive = id.as_drive();
    match circuit {
        RamseyCircuit::Original => {}
        RamseyCircuit::IdOnQ2 => {
            h.add_control(embed(&Pauli::X.matrix(), &[1], 3), move |t| {
                drive.x.value(t)
            });
            h.add_control(embed(&Pauli::Y.matrix(), &[1], 3), move |t| {
                drive.y.value(t)
            });
        }
        RamseyCircuit::IdOnNeighbors => {
            h.add_control(embed(&Pauli::X.matrix(), &[0], 3), move |t| {
                drive.x.value(t)
            });
            h.add_control(embed(&Pauli::Y.matrix(), &[0], 3), move |t| {
                drive.y.value(t)
            });
            let drive2 = id.as_drive();
            h.add_control(embed(&Pauli::X.matrix(), &[2], 3), move |t| {
                drive2.x.value(t)
            });
            h.add_control(embed(&Pauli::Y.matrix(), &[2], 3), move |t| {
                drive2.y.value(t)
            });
        }
    }
    h.propagate(duration, (duration * STEPS_PER_NS) as usize)
}

/// Fits the dominant oscillation frequency (cycles/ns) of a fringe by
/// least squares over a dense frequency grid.
///
/// The fit model is `P(τ) = a·cos(2πfτ) + b·sin(2πfτ) + c`; for each `f`
/// the optimal `(a, b, c)` is linear, so scanning `f` and keeping the
/// minimum residual is robust and derivative-free.
pub fn fit_frequency(fringe: &Fringe, f_max: f64) -> f64 {
    let n = fringe.len() as f64;
    let mut best = (0.0, f64::INFINITY);
    let grid = 4000;
    for g in 1..=grid {
        let f = f_max * g as f64 / grid as f64;
        // Linear least squares for a, b, c.
        let (mut scc, mut sss, mut ssc, mut sc, mut ss) = (0.0, 0.0, 0.0, 0.0, 0.0);
        let (mut syc, mut sys, mut sy) = (0.0, 0.0, 0.0);
        for &(t, y) in fringe {
            let (c, s) = (
                (2.0 * std::f64::consts::PI * f * t).cos(),
                (2.0 * std::f64::consts::PI * f * t).sin(),
            );
            scc += c * c;
            sss += s * s;
            ssc += s * c;
            sc += c;
            ss += s;
            syc += y * c;
            sys += y * s;
            sy += y;
        }
        // Solve the 3×3 normal equations via zz-linalg (tiny system).
        let m = Matrix::from_rows(&[
            &[
                zz_linalg::c64::real(scc),
                zz_linalg::c64::real(ssc),
                zz_linalg::c64::real(sc),
            ],
            &[
                zz_linalg::c64::real(ssc),
                zz_linalg::c64::real(sss),
                zz_linalg::c64::real(ss),
            ],
            &[
                zz_linalg::c64::real(sc),
                zz_linalg::c64::real(ss),
                zz_linalg::c64::real(n),
            ],
        ]);
        let rhs = [syc, sys, sy];
        let Some(sol) = solve3(&m, &rhs) else {
            continue;
        };
        let (a, b, c) = (sol[0], sol[1], sol[2]);
        let residual: f64 = fringe
            .iter()
            .map(|&(t, y)| {
                let (cc, s) = (
                    (2.0 * std::f64::consts::PI * f * t).cos(),
                    (2.0 * std::f64::consts::PI * f * t).sin(),
                );
                (y - a * cc - b * s - c).powi(2)
            })
            .sum();
        if residual < best.1 {
            best = (f, residual);
        }
    }
    best.0
}

/// Solves a real 3×3 system by Cramer's rule.
fn solve3(m: &Matrix, rhs: &[f64; 3]) -> Option<[f64; 3]> {
    let a = |i: usize, j: usize| m[(i, j)].re;
    let det3 = |m00: f64,
                m01: f64,
                m02: f64,
                m10: f64,
                m11: f64,
                m12: f64,
                m20: f64,
                m21: f64,
                m22: f64| {
        m00 * (m11 * m22 - m12 * m21) - m01 * (m10 * m22 - m12 * m20)
            + m02 * (m10 * m21 - m11 * m20)
    };
    let d = det3(
        a(0, 0),
        a(0, 1),
        a(0, 2),
        a(1, 0),
        a(1, 1),
        a(1, 2),
        a(2, 0),
        a(2, 1),
        a(2, 2),
    );
    if d.abs() < 1e-12 {
        return None;
    }
    let dx = det3(
        rhs[0],
        a(0, 1),
        a(0, 2),
        rhs[1],
        a(1, 1),
        a(1, 2),
        rhs[2],
        a(2, 1),
        a(2, 2),
    );
    let dy = det3(
        a(0, 0),
        rhs[0],
        a(0, 2),
        a(1, 0),
        rhs[1],
        a(1, 2),
        a(2, 0),
        rhs[2],
        a(2, 2),
    );
    let dz = det3(
        a(0, 0),
        a(0, 1),
        rhs[0],
        a(1, 0),
        a(1, 1),
        rhs[1],
        a(2, 0),
        a(2, 1),
        rhs[2],
    );
    Some([dx / d, dy / d, dz / d])
}

/// Measures the effective ZZ strength (in kHz) seen by `Q2`: the difference
/// between the fringe frequencies with neighbors excited vs grounded.
pub fn effective_zz_khz(circuit: RamseyCircuit, group: NeighborGroup, cfg: &RamseyConfig) -> f64 {
    let f_max = 2.5 * cfg.detuning / (2.0 * std::f64::consts::PI);
    let f0 = fit_frequency(&ramsey_fringe(circuit, group, false, cfg), f_max);
    let f1 = fit_frequency(&ramsey_fringe(circuit, group, true, cfg), f_max);
    // cycles/ns → kHz.
    (f1 - f0).abs() * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> RamseyConfig {
        RamseyConfig {
            blocks: 96,
            ..RamseyConfig::paper_default()
        }
    }

    #[test]
    fn fit_recovers_a_known_frequency() {
        let f_true = 0.0011; // cycles/ns
        let fringe: Fringe = (0..200)
            .map(|k| {
                let t = k as f64 * 40.0;
                (
                    t,
                    0.5 - 0.5 * (2.0 * std::f64::consts::PI * f_true * t).cos(),
                )
            })
            .collect();
        let f = fit_frequency(&fringe, 0.0025);
        assert!((f - f_true).abs() < 2e-6, "fit {f} vs true {f_true}");
    }

    #[test]
    fn unprotected_circuit_sees_full_zz() {
        let cfg = quick_cfg();
        let zz = effective_zz_khz(RamseyCircuit::Original, NeighborGroup::Q1Only, &cfg);
        // 4λ/2π = 200 kHz.
        assert!((zz - 200.0).abs() < 30.0, "expected ≈200 kHz, got {zz}");
    }

    #[test]
    fn dcg_identity_pulses_suppress_zz_on_q2() {
        let cfg = quick_cfg();
        let zz = effective_zz_khz(RamseyCircuit::IdOnQ2, NeighborGroup::Q1Only, &cfg);
        assert!(zz < 11.0, "paper threshold is 11 kHz, got {zz}");
    }

    #[test]
    fn neighbor_pulses_also_suppress_zz() {
        let cfg = quick_cfg();
        let zz = effective_zz_khz(RamseyCircuit::IdOnNeighbors, NeighborGroup::Both, &cfg);
        assert!(zz < 11.0, "paper threshold is 11 kHz, got {zz}");
    }
}
