//! The basic-region systems of Section 4, as ready-to-propagate
//! Hamiltonians, plus the infidelity measures of Figures 16–19.
//!
//! Qubit ordering (most-significant first, workspace convention):
//!
//! * single-qubit region: `[driven qubit, spectator]` (4-dim),
//! * two-qubit region: `[spectator 1, a, b, spectator 4]` (16-dim) — the
//!   paper's chain `➀–➋–➌–➃`,
//! * transmon region: `[5-level transmon, spectator]` (10-dim).

use zz_linalg::Matrix;
use zz_quantum::fidelity::average_gate_infidelity;
use zz_quantum::pauli::{Pauli, PauliString};
use zz_quantum::{embed, gates, transmon};

use crate::envelope::Envelope;
use crate::propagate::TimeDependentHamiltonian;

/// Time resolution of all pulse-level propagation (steps per ns).
pub const STEPS_PER_NS: f64 = 10.0;

fn steps_for(duration: f64) -> usize {
    (duration * STEPS_PER_NS).round().max(10.0) as usize
}

/// Drive envelopes for one qubit: the two quadratures `Ωx(t)`, `Ωy(t)`.
pub struct QubitDrive<'a> {
    /// In-phase envelope.
    pub x: &'a dyn Envelope,
    /// Quadrature envelope.
    pub y: &'a dyn Envelope,
}

impl<'a> QubitDrive<'a> {
    /// Pulse duration (the longer of the two quadratures).
    pub fn duration(&self) -> f64 {
        self.x.duration().max(self.y.duration())
    }
}

/// Control-only evolution `U_ctrl(T)` of a driven qubit (2-dim).
pub fn evolve_1q_ctrl(drive: &QubitDrive<'_>) -> Matrix {
    let duration = drive.duration();
    let mut h = TimeDependentHamiltonian::new(Matrix::zeros(2, 2));
    h.add_control(Pauli::X.matrix(), |t| drive.x.value(t));
    h.add_control(Pauli::Y.matrix(), |t| drive.y.value(t));
    h.propagate(duration, steps_for(duration))
}

/// Full evolution of a driven qubit with one spectator under crosstalk
/// `λ Z⊗Z` (4-dim).
pub fn evolve_1q_with_spectator(drive: &QubitDrive<'_>, lambda: f64) -> Matrix {
    let duration = drive.duration();
    let zz = PauliString::zz(2, 0, 1).matrix();
    let mut h = TimeDependentHamiltonian::new(zz.scale(zz_linalg::c64::real(lambda)));
    h.add_control(embed(&Pauli::X.matrix(), &[0], 2), |t| drive.x.value(t));
    h.add_control(embed(&Pauli::Y.matrix(), &[0], 2), |t| drive.y.value(t));
    h.propagate(duration, steps_for(duration))
}

/// Figure 16 measure: infidelity between the actual 4-dim evolution and the
/// ideal `target ⊗ I` for a single-qubit pulse under crosstalk `λ`.
pub fn infidelity_1q(drive: &QubitDrive<'_>, target: &Matrix, lambda: f64) -> f64 {
    let actual = evolve_1q_with_spectator(drive, lambda);
    let ideal = target.kron(&Matrix::identity(2));
    average_gate_infidelity(&actual, &ideal)
}

/// Drives for the two-qubit cross-resonance region: quadratures on both
/// qubits plus the coupling drive `Ω_ab(t)` on `H_coupling = Z⊗X`.
pub struct TwoQubitDrive<'a> {
    /// Drive on qubit `a` (the control of `ZX90`).
    pub a: QubitDrive<'a>,
    /// Drive on qubit `b` (the target).
    pub b: QubitDrive<'a>,
    /// Coupling drive amplitude.
    pub coupling: &'a dyn Envelope,
}

impl<'a> TwoQubitDrive<'a> {
    /// Pulse duration (maximum over all envelopes).
    pub fn duration(&self) -> f64 {
        self.a
            .duration()
            .max(self.b.duration())
            .max(self.coupling.duration())
    }
}

/// Control evolution `Ũ₂(T)` of the two-qubit region (4-dim), optionally
/// including the intra-region crosstalk `λ_ab Z⊗Z` the paper folds into the
/// dressed target.
pub fn evolve_2q_ctrl(drive: &TwoQubitDrive<'_>, lambda_intra: f64) -> Matrix {
    let duration = drive.duration();
    let zz = PauliString::zz(2, 0, 1).matrix();
    let mut h = TimeDependentHamiltonian::new(zz.scale(zz_linalg::c64::real(lambda_intra)));
    h.add_control(embed(&Pauli::X.matrix(), &[0], 2), |t| drive.a.x.value(t));
    h.add_control(embed(&Pauli::Y.matrix(), &[0], 2), |t| drive.a.y.value(t));
    h.add_control(embed(&Pauli::X.matrix(), &[1], 2), |t| drive.b.x.value(t));
    h.add_control(embed(&Pauli::Y.matrix(), &[1], 2), |t| drive.b.y.value(t));
    let zx = Pauli::Z.matrix().kron(&Pauli::X.matrix());
    h.add_control(zx, |t| drive.coupling.value(t));
    h.propagate(duration, steps_for(duration))
}

/// Full evolution of the paper's 4-qubit chain `➀–a–b–➃` (16-dim) with
/// cross-region strengths `λ_1a`, `λ_b4` and intra strength `λ_ab`.
pub fn evolve_2q_region(
    drive: &TwoQubitDrive<'_>,
    lambda_1a: f64,
    lambda_b4: f64,
    lambda_ab: f64,
) -> Matrix {
    let duration = drive.duration();
    let n = 4;
    let mut h_static = PauliString::zz(n, 0, 1)
        .matrix()
        .scale(zz_linalg::c64::real(lambda_1a));
    h_static.add_scaled(
        &PauliString::zz(n, 2, 3).matrix(),
        zz_linalg::c64::real(lambda_b4),
    );
    h_static.add_scaled(
        &PauliString::zz(n, 1, 2).matrix(),
        zz_linalg::c64::real(lambda_ab),
    );
    let mut h = TimeDependentHamiltonian::new(h_static);
    h.add_control(embed(&Pauli::X.matrix(), &[1], n), |t| drive.a.x.value(t));
    h.add_control(embed(&Pauli::Y.matrix(), &[1], n), |t| drive.a.y.value(t));
    h.add_control(embed(&Pauli::X.matrix(), &[2], n), |t| drive.b.x.value(t));
    h.add_control(embed(&Pauli::Y.matrix(), &[2], n), |t| drive.b.y.value(t));
    let zx = embed(&Pauli::Z.matrix().kron(&Pauli::X.matrix()), &[1, 2], n);
    h.add_control(zx, |t| drive.coupling.value(t));
    h.propagate(duration, steps_for(duration))
}

/// Figure 19 measure: infidelity between the actual 16-dim evolution and
/// `I ⊗ Ũ₂(T) ⊗ I` (spectators ideally untouched; the gate is compared to
/// its intra-crosstalk-dressed self).
pub fn infidelity_2q(
    drive: &TwoQubitDrive<'_>,
    lambda_1a: f64,
    lambda_b4: f64,
    lambda_ab: f64,
) -> f64 {
    let actual = evolve_2q_region(drive, lambda_1a, lambda_b4, lambda_ab);
    let dressed = evolve_2q_ctrl(drive, lambda_ab);
    let ideal = embed(&dressed, &[1, 2], 4);
    average_gate_infidelity(&actual, &ideal)
}

/// Full evolution of a five-level transmon (anharmonicity `alpha`, rad/ns)
/// with a two-level spectator under `λ Z̃⊗Z` (10-dim). Used by Figure 18.
pub fn evolve_transmon_with_spectator(
    drive: &QubitDrive<'_>,
    alpha: f64,
    lambda: f64,
    levels: usize,
) -> Matrix {
    let duration = drive.duration();
    let dim = levels * 2;
    // H_static = anharmonicity ⊗ I + λ Z̃⊗σz
    let mut h_static = transmon::anharmonicity_term(levels, alpha).kron(&Matrix::identity(2));
    h_static.add_scaled(
        &transmon::z_ladder(levels).kron(&Pauli::Z.matrix()),
        zz_linalg::c64::real(lambda),
    );
    debug_assert_eq!(h_static.rows(), dim);
    let dx = transmon::drive_x(levels).kron(&Matrix::identity(2));
    let dy = transmon::drive_y(levels).kron(&Matrix::identity(2));
    let mut h = TimeDependentHamiltonian::new(h_static);
    h.add_control(dx, |t| drive.x.value(t));
    h.add_control(dy, |t| drive.y.value(t));
    h.propagate(duration, steps_for(duration))
}

/// Figure 18 measure: infidelity of the computational block of the
/// transmon ⊗ spectator evolution against `target ⊗ I`. Leakage shows up as
/// non-unitarity of the block and is penalized by the fidelity measure.
pub fn infidelity_transmon(
    drive: &QubitDrive<'_>,
    target: &Matrix,
    alpha: f64,
    lambda: f64,
) -> f64 {
    let levels = 5;
    let u = evolve_transmon_with_spectator(drive, alpha, lambda, levels);
    let block = transmon::computational_block(&u, &[levels, 2]);
    let ideal = target.kron(&Matrix::identity(2));
    // The block may be sub-unitary (leakage); Nielsen's formula still
    // penalizes the lost population through the reduced trace overlap.
    average_gate_infidelity(&ideal, &block).clamp(0.0, 1.0)
}

/// Conditional-phase rate: the effective residual ZZ strength (rad/ns) that
/// a pulse leaves on one surrounding coupling of strength `lambda`.
///
/// Measured exactly as a Ramsey contrast would: compare the phase picked up
/// by the driven qubit when the spectator is `|0⟩` versus `|1⟩`.
/// For an undriven (Gaussian-free) qubit this returns `lambda` itself; for
/// a perfect ZZ-suppressing pulse it returns 0.
pub fn residual_zz_rate(drive: &QubitDrive<'_>, lambda: f64) -> f64 {
    let duration = drive.duration();
    let u = evolve_1q_with_spectator(drive, lambda);
    // Basis: |q s⟩ with q the driven qubit (MSB). Blocks for s=0 and s=1:
    // extract ⟨0q|U|0q⟩ 2×2 blocks over q for fixed spectator value s.
    let block = |s: usize| -> Matrix { Matrix::from_fn(2, 2, |r, c| u[(2 * r + s, 2 * c + s)]) };
    let u0 = block(0);
    let u1 = block(1);
    // Relative phase between the two conditional evolutions: the conditional
    // ZZ phase φ satisfies U₁ ≈ e^{−iφZ}·U₀ (to first order). Use the
    // overlap of U₀†U₁ with Z to extract φ.
    let m = u0.dagger().matmul(&u1);
    // m ≈ exp(−iφZ) = cosφ·I − i·sinφ·Z ⇒ φ from the (0,0)/(1,1) phases.
    // A bare coupling exp(−iλtZ⊗Z) yields φ = −2λt, hence the 2 below.
    let phi = (m[(1, 1)].arg() - m[(0, 0)].arg()) / 2.0;
    (phi / (2.0 * duration)).abs()
}

/// Which qubit of a two-qubit gate a spectator is attached to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GateSide {
    /// The spectator couples to the gate's control (Z factor) qubit.
    Control,
    /// The spectator couples to the gate's target (X factor) qubit.
    Target,
}

/// Conditional-phase residual of a two-qubit pulse on a spectator attached
/// to one of its qubits (rad/ns), analogous to [`residual_zz_rate`].
///
/// Simulates the 8-dim system `[spectator, a, b]` with `λ Z_s Z_a` (control
/// side) or `λ Z_s Z_b` (target side) and extracts the spectator-conditional
/// phase accumulated over the pulse.
pub fn residual_zz_rate_2q(drive: &TwoQubitDrive<'_>, lambda: f64, side: GateSide) -> f64 {
    let duration = drive.duration();
    let n = 3; // [spectator, a, b]
    let coupled = match side {
        GateSide::Control => 1,
        GateSide::Target => 2,
    };
    let h_static = PauliString::zz(n, 0, coupled)
        .matrix()
        .scale(zz_linalg::c64::real(lambda));
    let mut h = TimeDependentHamiltonian::new(h_static);
    h.add_control(embed(&Pauli::X.matrix(), &[1], n), |t| drive.a.x.value(t));
    h.add_control(embed(&Pauli::Y.matrix(), &[1], n), |t| drive.a.y.value(t));
    h.add_control(embed(&Pauli::X.matrix(), &[2], n), |t| drive.b.x.value(t));
    h.add_control(embed(&Pauli::Y.matrix(), &[2], n), |t| drive.b.y.value(t));
    let zx = embed(&Pauli::Z.matrix().kron(&Pauli::X.matrix()), &[1, 2], n);
    h.add_control(zx, |t| drive.coupling.value(t));
    let u = h.propagate(duration, steps_for(duration));

    // Spectator-conditional 4×4 blocks (spectator is the MSB).
    let block = |s: usize| Matrix::from_fn(4, 4, |r, c| u[(s * 4 + r, s * 4 + c)]);
    let m = block(0).dagger().matmul(&block(1));
    // m ≈ exp(−2iλ_eff T Z_q) on the gate pair; average the conditional
    // phase over the ±1 eigenspaces of Z on the coupled qubit.
    let z_on = match side {
        GateSide::Control => embed(&Pauli::Z.matrix(), &[0], 2),
        GateSide::Target => embed(&Pauli::Z.matrix(), &[1], 2),
    };
    let mut phase_plus = c64_zero();
    let mut phase_minus = c64_zero();
    for i in 0..4 {
        if z_on[(i, i)].re > 0.0 {
            phase_plus += m[(i, i)];
        } else {
            phase_minus += m[(i, i)];
        }
    }
    let phi = (phase_minus.arg() - phase_plus.arg()) / 2.0;
    (phi / (2.0 * duration)).abs()
}

fn c64_zero() -> zz_linalg::c64 {
    zz_linalg::c64::ZERO
}

/// Convenience: the `X90` and identity gate targets of the paper.
pub fn x90_target() -> Matrix {
    gates::x90()
}

/// The identity target (`I = Rx(2π)` at pulse level, identity as a gate).
pub fn id_target() -> Matrix {
    Matrix::identity(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{GaussianPulse, ZeroPulse};
    use crate::mhz;

    fn gaussian_x90_drive() -> (GaussianPulse, ZeroPulse) {
        (
            GaussianPulse::with_rotation(std::f64::consts::FRAC_PI_2, 20.0),
            ZeroPulse::new(20.0),
        )
    }

    #[test]
    fn gaussian_pulse_implements_x90_without_crosstalk() {
        let (x, y) = gaussian_x90_drive();
        let drive = QubitDrive { x: &x, y: &y };
        let u = evolve_1q_ctrl(&drive);
        assert!(
            zz_quantum::gates::equal_up_to_phase(&u, &gates::x90(), 1e-4),
            "Gaussian π/2-area pulse must implement X90"
        );
        assert!(infidelity_1q(&drive, &gates::x90(), 0.0) < 1e-9);
    }

    #[test]
    fn crosstalk_degrades_gaussian_pulse_quadratically() {
        let (x, y) = gaussian_x90_drive();
        let drive = QubitDrive { x: &x, y: &y };
        let inf_small = infidelity_1q(&drive, &gates::x90(), mhz(0.5));
        let inf_large = infidelity_1q(&drive, &gates::x90(), mhz(2.0));
        assert!(inf_small > 1e-6, "crosstalk must hurt: {inf_small}");
        assert!(inf_large > 10.0 * inf_small, "roughly quadratic growth");
    }

    #[test]
    fn residual_rate_of_idle_qubit_is_lambda() {
        let x = ZeroPulse::new(20.0);
        let y = ZeroPulse::new(20.0);
        let drive = QubitDrive { x: &x, y: &y };
        let lambda = mhz(0.2);
        let r = residual_zz_rate(&drive, lambda);
        assert!((r - lambda).abs() < 1e-6, "idle residual {r} vs λ {lambda}");
    }

    #[test]
    fn coupling_drive_implements_zx90() {
        let zero20 = ZeroPulse::new(20.0);
        let coupling = GaussianPulse::with_rotation(std::f64::consts::FRAC_PI_2, 40.0);
        let drive = TwoQubitDrive {
            a: QubitDrive {
                x: &zero20,
                y: &zero20,
            },
            b: QubitDrive {
                x: &zero20,
                y: &zero20,
            },
            coupling: &coupling,
        };
        let u = evolve_2q_ctrl(&drive, 0.0);
        assert!(
            zz_quantum::gates::equal_up_to_phase(&u, &gates::zx90(), 1e-4),
            "π/4-area coupling drive must implement ZX90"
        );
    }

    #[test]
    fn two_qubit_infidelity_grows_with_cross_region_crosstalk() {
        let zero20 = ZeroPulse::new(20.0);
        let coupling = GaussianPulse::with_rotation(std::f64::consts::FRAC_PI_2, 40.0);
        let drive = TwoQubitDrive {
            a: QubitDrive {
                x: &zero20,
                y: &zero20,
            },
            b: QubitDrive {
                x: &zero20,
                y: &zero20,
            },
            coupling: &coupling,
        };
        let quiet = infidelity_2q(&drive, 0.0, 0.0, mhz(0.2));
        let noisy = infidelity_2q(&drive, mhz(1.0), mhz(1.0), mhz(0.2));
        assert!(
            quiet < 1e-8,
            "no cross-region crosstalk → dressed-exact: {quiet}"
        );
        assert!(noisy > 1e-4, "cross-region crosstalk must show: {noisy}");
    }

    #[test]
    fn transmon_matches_two_level_at_zero_anharmonicity_limit() {
        // With very large |α| the transmon behaves like a qubit.
        let (x, y) = gaussian_x90_drive();
        let drive = QubitDrive { x: &x, y: &y };
        let inf = infidelity_transmon(&drive, &gates::x90(), mhz(-5000.0), 0.0);
        assert!(inf < 1e-4, "large anharmonicity suppresses leakage: {inf}");
    }

    #[test]
    fn leakage_hurts_at_realistic_anharmonicity() {
        let (x, y) = gaussian_x90_drive();
        let drive = QubitDrive { x: &x, y: &y };
        let inf_realistic = infidelity_transmon(&drive, &gates::x90(), mhz(-300.0), 0.0);
        let inf_huge = infidelity_transmon(&drive, &gates::x90(), mhz(-5000.0), 0.0);
        assert!(
            inf_realistic > inf_huge,
            "−300 MHz anharmonicity must leak more than −5 GHz"
        );
    }
}
