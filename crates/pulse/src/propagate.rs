//! Piecewise-constant Schrödinger propagation.

use zz_linalg::expm::expm_step;
use zz_linalg::Matrix;

/// One controlled Hamiltonian term: an operator and its amplitude `u(t)`.
pub type ControlTerm<'a> = (Matrix, Box<dyn Fn(f64) -> f64 + 'a>);

/// A time-dependent Hamiltonian `H(t) = H₀ + Σ_k u_k(t)·H_k` given by a
/// static part and amplitude-controlled terms.
pub struct TimeDependentHamiltonian<'a> {
    /// The drift (static) Hamiltonian.
    pub h_static: Matrix,
    /// Controlled terms: `(operator, amplitude function of t)`.
    pub controls: Vec<ControlTerm<'a>>,
}

impl<'a> TimeDependentHamiltonian<'a> {
    /// Creates a Hamiltonian with only a drift term.
    pub fn new(h_static: Matrix) -> Self {
        TimeDependentHamiltonian {
            h_static,
            controls: Vec::new(),
        }
    }

    /// Adds a controlled term `u(t)·op`.
    ///
    /// # Panics
    ///
    /// Panics if the operator dimension differs from the drift's.
    pub fn add_control(&mut self, op: Matrix, amplitude: impl Fn(f64) -> f64 + 'a) -> &mut Self {
        assert_eq!(
            op.rows(),
            self.h_static.rows(),
            "control dimension mismatch"
        );
        self.controls.push((op, Box::new(amplitude)));
        self
    }

    /// Samples `H(t)`.
    pub fn at(&self, t: f64) -> Matrix {
        let mut h = self.h_static.clone();
        for (op, amp) in &self.controls {
            let a = amp(t);
            if a != 0.0 {
                h.add_scaled(op, zz_linalg::c64::real(a));
            }
        }
        h
    }

    /// Propagates `U(T) = Π_k exp(−i H(t_k) dt)` over `[0, duration]` with
    /// midpoint sampling and `steps` uniform steps.
    pub fn propagate(&self, duration: f64, steps: usize) -> Matrix {
        let dt = duration / steps as f64;
        let mut u = Matrix::identity(self.h_static.rows());
        for k in 0..steps {
            let t = (k as f64 + 0.5) * dt;
            let h = self.at(t);
            u = expm_step(&h, dt).matmul(&u);
        }
        u
    }

    /// Propagates while accumulating `∫ U†(t)·A·U(t) dt` for each observable
    /// `A` — the first-order (Magnus/Dyson) crosstalk integrals of the Pert
    /// objective. Returns `(U(T), integrals)`.
    pub fn propagate_with_integrals(
        &self,
        duration: f64,
        steps: usize,
        observables: &[Matrix],
    ) -> (Matrix, Vec<Matrix>) {
        let dim = self.h_static.rows();
        let dt = duration / steps as f64;
        let mut u = Matrix::identity(dim);
        let mut acc: Vec<Matrix> = observables
            .iter()
            .map(|_| Matrix::zeros(dim, dim))
            .collect();
        for k in 0..steps {
            let t = (k as f64 + 0.5) * dt;
            let h = self.at(t);
            u = expm_step(&h, dt).matmul(&u);
            let udag = u.dagger();
            for (a, obs) in acc.iter_mut().zip(observables) {
                let toggled = udag.matmul(obs).matmul(&u);
                a.add_scaled(&toggled, zz_linalg::c64::real(dt));
            }
        }
        (u, acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zz_linalg::c64;
    use zz_quantum::gates;
    use zz_quantum::pauli::Pauli;

    #[test]
    fn constant_drive_rotates() {
        // H = Ω·X constant for T with Ω·T = π/4 ⇒ Rx(π/2).
        let mut h = TimeDependentHamiltonian::new(Matrix::zeros(2, 2));
        let omega = std::f64::consts::FRAC_PI_4 / 20.0;
        h.add_control(Pauli::X.matrix(), move |_| omega);
        let u = h.propagate(20.0, 100);
        assert!(u.approx_eq(&gates::x90(), 1e-9));
    }

    #[test]
    fn drift_only_evolution() {
        let z = Pauli::Z.matrix();
        let h = TimeDependentHamiltonian::new(z.scale(c64::real(0.3)));
        let u = h.propagate(1.0, 50);
        let expected = zz_linalg::expm::expm_neg_i_h_t(&Pauli::Z.matrix(), 0.3);
        assert!(u.approx_eq(&expected, 1e-10));
    }

    #[test]
    fn integral_of_z_under_no_drive_is_t_z() {
        let h = TimeDependentHamiltonian::new(Matrix::zeros(2, 2));
        let (_, ints) = h.propagate_with_integrals(10.0, 100, &[Pauli::Z.matrix()]);
        assert!(ints[0].approx_eq(&Pauli::Z.matrix().scale(c64::real(10.0)), 1e-9));
    }

    #[test]
    fn echo_cancels_the_z_integral() {
        // A constant π rotation about X over [0, T/2] then a second π over
        // [T/2, T]: the toggling-frame integral of Z averages to ~0.
        let omega = std::f64::consts::PI / 2.0 / 10.0; // π area per 10 ns
        let mut h = TimeDependentHamiltonian::new(Matrix::zeros(2, 2));
        h.add_control(Pauli::X.matrix(), move |_| omega);
        let (u, ints) = h.propagate_with_integrals(20.0, 400, &[Pauli::Z.matrix()]);
        // Full 2π rotation returns to identity (up to phase −1).
        assert!(zz_quantum::gates::equal_up_to_phase(
            &u,
            &Matrix::identity(2),
            1e-8
        ));
        let norm = ints[0].frobenius_norm();
        assert!(
            norm < 0.05,
            "first-order Z integral should cancel, got {norm}"
        );
    }
}
