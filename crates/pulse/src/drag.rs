//! First-order DRAG correction for leakage suppression.
//!
//! DRAG (Derivative Removal by Adiabatic Gate) modifies a pulse optimized
//! for a two-level system so it remains accurate on a weakly anharmonic
//! multi-level transmon: the quadrature receives the scaled derivative of
//! the in-phase envelope, `Ω_y(t) += −Ω̇_x(t) / (2α)` (and vice versa),
//! which cancels the leading leakage matrix element to `|2⟩`. The 1/2
//! matches this workspace's `H = Ω·σx` convention (the textbook coefficient
//! for `H = Ω/2·σx` is `1/α`); the test module verifies the choice on the
//! five-level transmon numerically.

use crate::envelope::Envelope;

/// An envelope pair with the first-order DRAG correction applied.
///
/// Wraps the original `(Ωx, Ωy)` and exposes the corrected quadratures:
/// `Ωx' = Ωx + Ω̇y/α`, `Ωy' = Ωy − Ω̇x/α`.
pub struct DragCorrected<'a> {
    x: &'a dyn Envelope,
    y: &'a dyn Envelope,
    alpha: f64,
}

impl<'a> DragCorrected<'a> {
    /// Applies DRAG for a transmon of anharmonicity `alpha` (rad/ns,
    /// negative for transmons).
    ///
    /// # Panics
    ///
    /// Panics if `alpha == 0`.
    pub fn new(x: &'a dyn Envelope, y: &'a dyn Envelope, alpha: f64) -> Self {
        assert!(alpha != 0.0, "DRAG requires a finite anharmonicity");
        DragCorrected { x, y, alpha }
    }

    /// The corrected in-phase envelope.
    pub fn x(&self) -> DragQuadrature<'_> {
        DragQuadrature {
            parent: self,
            is_x: true,
        }
    }

    /// The corrected quadrature envelope.
    pub fn y(&self) -> DragQuadrature<'_> {
        DragQuadrature {
            parent: self,
            is_x: false,
        }
    }
}

/// One corrected quadrature of a [`DragCorrected`] pair.
pub struct DragQuadrature<'a> {
    parent: &'a DragCorrected<'a>,
    is_x: bool,
}

impl Envelope for DragQuadrature<'_> {
    fn value(&self, t: f64) -> f64 {
        if self.is_x {
            self.parent.x.value(t) + self.parent.y.derivative(t) / (2.0 * self.parent.alpha)
        } else {
            self.parent.y.value(t) - self.parent.x.derivative(t) / (2.0 * self.parent.alpha)
        }
    }

    fn derivative(&self, t: f64) -> f64 {
        // Second derivatives are not available analytically; a centered
        // difference is plenty for any nested use.
        let h = 1e-4;
        (self.value(t + h) - self.value(t - h)) / (2.0 * h)
    }

    fn duration(&self) -> f64 {
        self.parent.x.duration().max(self.parent.y.duration())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{GaussianPulse, ZeroPulse};
    use crate::mhz;
    use crate::systems::{infidelity_transmon, QubitDrive};
    use zz_quantum::gates;

    #[test]
    fn drag_adds_derivative_to_quadrature() {
        let x = GaussianPulse::with_rotation(std::f64::consts::FRAC_PI_2, 20.0);
        let y = ZeroPulse::new(20.0);
        let alpha = mhz(-300.0);
        let d = DragCorrected::new(&x, &y, alpha);
        let t = 5.0;
        assert!((d.x().value(t) - x.value(t)).abs() < 1e-12);
        assert!((d.y().value(t) - (-x.derivative(t) / (2.0 * alpha))).abs() < 1e-12);
    }

    #[test]
    fn drag_reduces_leakage_on_a_transmon() {
        let x = GaussianPulse::with_rotation(std::f64::consts::FRAC_PI_2, 20.0);
        let y = ZeroPulse::new(20.0);
        let alpha = mhz(-300.0);

        let plain = infidelity_transmon(&QubitDrive { x: &x, y: &y }, &gates::x90(), alpha, 0.0);
        let d = DragCorrected::new(&x, &y, alpha);
        let (dx, dy) = (d.x(), d.y());
        let dragged =
            infidelity_transmon(&QubitDrive { x: &dx, y: &dy }, &gates::x90(), alpha, 0.0);
        assert!(
            dragged < plain / 50.0,
            "DRAG must reduce leakage: {dragged} vs {plain}"
        );
    }
}
