//! Dynamically corrected gates (DCG) assembled from Gaussian segments.
//!
//! DCG [Khodjasteh & Viola] does not optimize waveforms: it concatenates
//! existing calibrated pulses so the first-order error integral cancels.
//! Following the paper's appendix:
//!
//! * `X90`: `π(20 ns) · π/2(20 ns) · −π/2(20 ns) · π(20 ns) · π/2(40 ns)`
//!   — total 120 ns, net rotation `5π/2 ≡ π/2`;
//! * `I`: two consecutive `π` pulses (40 ns) — a continuous spin echo.
//!
//! The cancellation argument: writing the toggling-frame integrand as
//! `cosθ(t)·Z + sinθ(t)·Y` for accumulated rotation angle `θ(t)`, each
//! `π` segment's `cos` part vanishes by symmetry, the two `π` segments'
//! `sin` parts cancel each other, and the `±π/2` pair's contribution is
//! cancelled by the final, half-rate 40 ns `π/2` segment.

use std::f64::consts::{FRAC_PI_2, PI};

use crate::envelope::{GaussianPulse, SequencePulse};

/// The 120 ns DCG sequence implementing `X90 = Rx(π/2)`.
pub fn dcg_x90() -> SequencePulse {
    SequencePulse::new(vec![
        (Box::new(GaussianPulse::with_rotation(PI, 20.0)), 1.0),
        (Box::new(GaussianPulse::with_rotation(FRAC_PI_2, 20.0)), 1.0),
        (
            Box::new(GaussianPulse::with_rotation(FRAC_PI_2, 20.0)),
            -1.0,
        ),
        (Box::new(GaussianPulse::with_rotation(PI, 20.0)), 1.0),
        (Box::new(GaussianPulse::with_rotation(FRAC_PI_2, 40.0)), 1.0),
    ])
}

/// The 40 ns DCG identity: two back-to-back `π` pulses (continuous echo).
pub fn dcg_id() -> SequencePulse {
    SequencePulse::new(vec![
        (Box::new(GaussianPulse::with_rotation(PI, 20.0)), 1.0),
        (Box::new(GaussianPulse::with_rotation(PI, 20.0)), 1.0),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::Envelope;
    use crate::systems::{evolve_1q_ctrl, infidelity_1q, QubitDrive};
    use crate::{envelope::ZeroPulse, mhz};
    use zz_quantum::gates;

    #[test]
    fn dcg_x90_implements_x90() {
        let x = dcg_x90();
        let y = ZeroPulse::new(x.duration());
        let u = evolve_1q_ctrl(&QubitDrive { x: &x, y: &y });
        assert!(
            gates::equal_up_to_phase(&u, &gates::x90(), 1e-4),
            "DCG sequence must implement X90"
        );
        assert_eq!(x.duration(), 120.0);
    }

    #[test]
    fn dcg_id_implements_identity() {
        let x = dcg_id();
        let y = ZeroPulse::new(x.duration());
        let u = evolve_1q_ctrl(&QubitDrive { x: &x, y: &y });
        assert!(gates::equal_up_to_phase(
            &u,
            &zz_linalg::Matrix::identity(2),
            1e-4
        ));
        assert_eq!(x.duration(), 40.0);
    }

    #[test]
    fn dcg_beats_plain_gaussian_under_crosstalk() {
        let lambda = mhz(0.2); // the typical device value
        let gx = GaussianPulse::with_rotation(FRAC_PI_2, 20.0);
        let gy = ZeroPulse::new(20.0);
        let gauss_inf = infidelity_1q(&QubitDrive { x: &gx, y: &gy }, &gates::x90(), lambda);

        let dx = dcg_x90();
        let dy = ZeroPulse::new(dx.duration());
        let dcg_inf = infidelity_1q(&QubitDrive { x: &dx, y: &dy }, &gates::x90(), lambda);
        assert!(
            dcg_inf < gauss_inf / 3.0,
            "DCG must suppress ZZ: dcg {dcg_inf} vs gaussian {gauss_inf}"
        );
    }

    #[test]
    fn dcg_identity_echoes_out_zz() {
        let lambda = mhz(0.2);
        // Idle qubit for 40 ns vs DCG identity for 40 ns.
        let idle_x = ZeroPulse::new(40.0);
        let idle_y = ZeroPulse::new(40.0);
        let idle_inf = infidelity_1q(
            &QubitDrive {
                x: &idle_x,
                y: &idle_y,
            },
            &zz_linalg::Matrix::identity(2),
            lambda,
        );
        let dx = dcg_id();
        let dy = ZeroPulse::new(40.0);
        let dcg_inf = infidelity_1q(
            &QubitDrive { x: &dx, y: &dy },
            &zz_linalg::Matrix::identity(2),
            lambda,
        );
        assert!(
            dcg_inf < idle_inf / 20.0,
            "echo must beat idling: {dcg_inf} vs {idle_inf}"
        );
    }
}
