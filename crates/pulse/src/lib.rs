//! Microwave pulse shapes and ZZ-suppressing pulse optimization.
//!
//! This crate implements the pulse half of the paper's co-optimization
//! (Sections 4 and 7.1.1): pulses that realize a native gate *and* cancel
//! the always-on `λ σz⊗σz` crosstalk on the couplings surrounding it.
//!
//! * [`envelope`] — Gaussian and Fourier-cosine envelopes (the appendix's
//!   waveform ansatz), with analytic derivatives for DRAG;
//! * [`propagate`] — piecewise-constant Schrödinger propagation;
//! * [`systems`] — the basic-region Hamiltonians: a driven qubit with
//!   spectators, the two-qubit cross-resonance region, and the five-level
//!   transmon for leakage studies;
//! * [`optimize`] — Adam with finite-difference gradients, plus the two
//!   optimization objectives: `OptCtrl` (average-gate-fidelity loss) and
//!   `Pert` (first-order perturbative ZZ term);
//! * [`dcg`] — dynamically corrected gates assembled from Gaussian pulses;
//! * [`drag`] — first-order DRAG correction;
//! * [`noise`] — carrier detuning and amplitude-fluctuation drive noise;
//! * [`library`] — pre-optimized factory pulses for `X90`, `I` and `ZX90`
//!   under each method (regenerate with `cargo run -p zz-pulse --bin
//!   calibrate --release`);
//! * [`ramsey`] — the paper's Ramsey experiments (Fig 26/27) simulated on a
//!   three-transmon line.
//!
//! # Units
//!
//! Time is in **ns**, angular frequencies in **rad/ns** (so a crosstalk
//! strength quoted as `λ/2π = 200 kHz` enters as `2π·2e−4 rad/ns`), and
//! `ħ = 1` throughout.

#![warn(missing_docs)]

pub mod dcg;
pub mod drag;
pub mod envelope;
pub mod library;
pub mod noise;
pub mod optimize;
pub mod propagate;
pub mod ramsey;
pub mod systems;

/// Converts a frequency in MHz to an angular frequency in rad/ns.
pub fn mhz(f: f64) -> f64 {
    2.0 * std::f64::consts::PI * f * 1e-3
}

/// Converts a frequency in kHz to an angular frequency in rad/ns.
pub fn khz(f: f64) -> f64 {
    mhz(f * 1e-3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert!((mhz(1000.0) - 2.0 * std::f64::consts::PI).abs() < 1e-12);
        assert!((khz(200.0) - mhz(0.2)).abs() < 1e-15);
    }
}
