//! Pulse optimization: Adam over Fourier coefficients, with the paper's two
//! ZZ-suppressing objectives.
//!
//! * **OptCtrl** (quantum optimal control): maximize the average gate
//!   fidelity of the *full* evolution against `target ⊗ I`, averaged over a
//!   range of crosstalk strengths, while constraining the control-only
//!   evolution to the target gate.
//! * **Pert** (the paper's proposal): cancel the *first-order* perturbative
//!   crosstalk term `U⁽¹⁾(T) = −i∫U†_ctrl·H_xtalk·U_ctrl dt` exactly, which
//!   suppresses ZZ independent of its strength.
//!
//! Gradients are numerical (central differences); the parameter counts are
//! tiny (10 for a single-qubit gate, 25 for `ZX90`).

use zz_linalg::Matrix;
use zz_quantum::fidelity::average_gate_fidelity;
use zz_quantum::pauli::{Pauli, PauliString};
use zz_quantum::{embed, gates};

use crate::envelope::{Envelope, FourierPulse};
use crate::systems::{
    evolve_1q_ctrl, evolve_1q_with_spectator, evolve_2q_ctrl, evolve_2q_region, QubitDrive,
    TwoQubitDrive,
};

/// Number of Fourier basis functions per control (the appendix uses 5).
pub const BASIS: usize = 5;

/// Adam optimizer configuration.
#[derive(Clone, Copy, Debug)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub eps: f64,
    /// Iteration budget.
    pub iters: usize,
    /// Finite-difference step.
    pub fd_step: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 0.003,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-9,
            iters: 400,
            fd_step: 1e-6,
        }
    }
}

/// Minimizes `loss` starting from `x0`; returns the best parameters seen and
/// their loss.
pub fn minimize(loss: impl Fn(&[f64]) -> f64, x0: &[f64], config: &AdamConfig) -> (Vec<f64>, f64) {
    let n = x0.len();
    let mut x = x0.to_vec();
    let mut m = vec![0.0; n];
    let mut v = vec![0.0; n];
    let mut best_x = x.clone();
    let mut best_l = loss(&x);
    for t in 1..=config.iters {
        // Central-difference gradient.
        let mut g = vec![0.0; n];
        for i in 0..n {
            let mut xp = x.clone();
            xp[i] += config.fd_step;
            let mut xm = x.clone();
            xm[i] -= config.fd_step;
            g[i] = (loss(&xp) - loss(&xm)) / (2.0 * config.fd_step);
        }
        for i in 0..n {
            m[i] = config.beta1 * m[i] + (1.0 - config.beta1) * g[i];
            v[i] = config.beta2 * v[i] + (1.0 - config.beta2) * g[i] * g[i];
            let mh = m[i] / (1.0 - config.beta1.powi(t as i32));
            let vh = v[i] / (1.0 - config.beta2.powi(t as i32));
            x[i] -= config.lr * mh / (vh.sqrt() + config.eps);
        }
        let l = loss(&x);
        if l < best_l {
            best_l = l;
            best_x = x.clone();
        }
    }
    (best_x, best_l)
}

/// Splits a flat single-qubit parameter vector into `(Ωx, Ωy)` envelopes.
pub fn unpack_1q(params: &[f64], duration: f64) -> (FourierPulse, FourierPulse) {
    assert_eq!(params.len(), 2 * BASIS, "expected {} parameters", 2 * BASIS);
    (
        FourierPulse::new(params[..BASIS].to_vec(), duration),
        FourierPulse::new(params[BASIS..].to_vec(), duration),
    )
}

/// Splits a flat two-qubit parameter vector into
/// `(Ωx_a, Ωy_a, Ωx_b, Ωy_b, Ω_ab)` envelopes.
pub fn unpack_2q(
    params: &[f64],
    duration: f64,
) -> (
    FourierPulse,
    FourierPulse,
    FourierPulse,
    FourierPulse,
    FourierPulse,
) {
    assert_eq!(params.len(), 5 * BASIS, "expected {} parameters", 5 * BASIS);
    let f = |k: usize| FourierPulse::new(params[k * BASIS..(k + 1) * BASIS].to_vec(), duration);
    (f(0), f(1), f(2), f(3), f(4))
}

/// The Pert loss for a single-qubit gate: `‖∫U†_ctrl Z U_ctrl dt‖_F / T`
/// plus `weight · (1 − F̄(U_ctrl(T), target))`.
pub fn pert_1q_loss(params: &[f64], target: &Matrix, duration: f64, weight: f64) -> f64 {
    let (x, y) = unpack_1q(params, duration);
    let steps = (duration * crate::systems::STEPS_PER_NS) as usize;
    let mut h = crate::propagate::TimeDependentHamiltonian::new(Matrix::zeros(2, 2));
    h.add_control(Pauli::X.matrix(), |t| x.value(t));
    h.add_control(Pauli::Y.matrix(), |t| y.value(t));
    let (u, ints) = h.propagate_with_integrals(duration, steps, &[Pauli::Z.matrix()]);
    let first_order = ints[0].frobenius_norm() / duration;
    let gate_err = 1.0 - average_gate_fidelity(&u, target);
    first_order + weight * gate_err
}

/// The OptCtrl loss for a single-qubit gate: mean infidelity of the full
/// (qubit ⊗ spectator) evolution against `target ⊗ I` over the given
/// crosstalk strengths, plus the gate-implementation penalty.
pub fn optctrl_1q_loss(
    params: &[f64],
    target: &Matrix,
    duration: f64,
    weight: f64,
    lambdas: &[f64],
) -> f64 {
    let (x, y) = unpack_1q(params, duration);
    let drive = QubitDrive { x: &x, y: &y };
    let ideal = target.kron(&Matrix::identity(2));
    let mean_inf: f64 = lambdas
        .iter()
        .map(|&l| 1.0 - average_gate_fidelity(&evolve_1q_with_spectator(&drive, l), &ideal))
        .sum::<f64>()
        / lambdas.len() as f64;
    let u_ctrl = evolve_1q_ctrl(&drive);
    mean_inf + weight * (1.0 - average_gate_fidelity(&u_ctrl, target))
}

/// The Pert loss for `ZX90`: norms of the two first-order integrals
/// `∫U†(Z⊗I)U dt`, `∫U†(I⊗Z)U dt` (over the 4-dim control evolution) plus
/// the gate penalty.
pub fn pert_2q_loss(params: &[f64], duration: f64, weight: f64) -> f64 {
    let (xa, ya, xb, yb, cpl) = unpack_2q(params, duration);
    let steps = (duration * crate::systems::STEPS_PER_NS) as usize;
    let mut h = crate::propagate::TimeDependentHamiltonian::new(Matrix::zeros(4, 4));
    h.add_control(embed(&Pauli::X.matrix(), &[0], 2), |t| xa.value(t));
    h.add_control(embed(&Pauli::Y.matrix(), &[0], 2), |t| ya.value(t));
    h.add_control(embed(&Pauli::X.matrix(), &[1], 2), |t| xb.value(t));
    h.add_control(embed(&Pauli::Y.matrix(), &[1], 2), |t| yb.value(t));
    h.add_control(Pauli::Z.matrix().kron(&Pauli::X.matrix()), |t| cpl.value(t));
    let za = embed(&Pauli::Z.matrix(), &[0], 2);
    let zb = embed(&Pauli::Z.matrix(), &[1], 2);
    let (u, ints) = h.propagate_with_integrals(duration, steps, &[za, zb]);
    let first_order = (ints[0].frobenius_norm() + ints[1].frobenius_norm()) / duration;
    let gate_err = 1.0 - average_gate_fidelity(&u, &gates::zx90());
    first_order + weight * gate_err
}

/// The OptCtrl loss for `ZX90` on the 4-qubit chain: mean infidelity against
/// the dressed `I ⊗ Ũ₂ ⊗ I` over crosstalk strengths, plus the gate penalty.
pub fn optctrl_2q_loss(
    params: &[f64],
    duration: f64,
    weight: f64,
    lambdas: &[f64],
    lambda_intra: f64,
) -> f64 {
    let (xa, ya, xb, yb, cpl) = unpack_2q(params, duration);
    let drive = TwoQubitDrive {
        a: QubitDrive { x: &xa, y: &ya },
        b: QubitDrive { x: &xb, y: &yb },
        coupling: &cpl,
    };
    let dressed = evolve_2q_ctrl(&drive, lambda_intra);
    let ideal = embed(&dressed, &[1, 2], 4);
    let mean_inf: f64 = lambdas
        .iter()
        .map(|&l| {
            let actual = evolve_2q_region(&drive, l, l, lambda_intra);
            1.0 - average_gate_fidelity(&actual, &ideal)
        })
        .sum::<f64>()
        / lambdas.len() as f64;
    let u_ctrl = evolve_2q_ctrl(&drive, 0.0);
    mean_inf + weight * (1.0 - average_gate_fidelity(&u_ctrl, &gates::zx90()))
}

/// Amplitude/bandwidth penalty: `Σ_j j²·A_j²` over all controls. Keeps the
/// optimized waveforms within the amplitudes the paper calls "reasonable"
/// (≈ ±50 MHz, Fig 28) and slow enough for the DRAG correction to remain
/// effective on a real transmon (Fig 18).
pub fn amplitude_penalty(params: &[f64]) -> f64 {
    params
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            let j = (i % BASIS + 1) as f64;
            j * j * a * a
        })
        .sum()
}

/// Initial guess for a single-qubit gate: put the whole rotation area on the
/// first cosine harmonic of `Ωx`.
pub fn initial_1q(theta: f64, duration: f64) -> Vec<f64> {
    let mut p = vec![0.0; 2 * BASIS];
    // Area of basis j is duration/2, so A₁ = θ / duration gives area θ/2.
    p[0] = theta / duration;
    // Small symmetric-breaking seeds on higher harmonics.
    p[1] = 0.3 * theta / duration;
    p[BASIS + 1] = 0.1 * theta / duration;
    p
}

/// Initial guess for `ZX90`: coupling drive carries the π/4 area; echo-like
/// seeds on the control qubit's X drive.
pub fn initial_2q(duration: f64) -> Vec<f64> {
    let mut p = vec![0.0; 5 * BASIS];
    let area = std::f64::consts::FRAC_PI_2; // θ/2 for θ = π/2
    p[4 * BASIS] = area / (duration / 2.0) / 2.0; // A₁ of the coupling drive... area θ/2 = A₁·T/2
    p[4 * BASIS] = std::f64::consts::FRAC_PI_4 / (duration / 2.0);
    p[1] = 2.0 * std::f64::consts::PI / duration; // a 2π echo swing on qubit a
    p[BASIS + 2] = 0.05;
    p[2 * BASIS + 1] = 0.05;
    p
}

/// Verifies that a parameter vector implements its target well enough to be
/// shipped in [`crate::library`]: control-evolution fidelity and first-order
/// suppression quality.
pub fn pulse_quality_1q(params: &[f64], target: &Matrix, duration: f64) -> (f64, f64) {
    let gate_err = {
        let (x, y) = unpack_1q(params, duration);
        let u = evolve_1q_ctrl(&QubitDrive { x: &x, y: &y });
        1.0 - average_gate_fidelity(&u, target)
    };
    let first_order = pert_1q_loss(params, target, duration, 0.0);
    (gate_err, first_order)
}

/// Quality of 2-qubit parameters: `(gate_error, first_order_norm)`.
pub fn pulse_quality_2q(params: &[f64], duration: f64) -> (f64, f64) {
    let gate_err = {
        let (xa, ya, xb, yb, cpl) = unpack_2q(params, duration);
        let drive = TwoQubitDrive {
            a: QubitDrive { x: &xa, y: &ya },
            b: QubitDrive { x: &xb, y: &yb },
            coupling: &cpl,
        };
        let u = evolve_2q_ctrl(&drive, 0.0);
        1.0 - average_gate_fidelity(&u, &gates::zx90())
    };
    let first_order = pert_2q_loss(params, duration, 0.0);
    (gate_err, first_order)
}

/// A ZZ-free sanity Hamiltonian export for tests.
pub fn zz_operator(n: usize, u: usize, v: usize) -> Matrix {
    PauliString::zz(n, u, v).matrix()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimizes_a_quadratic() {
        let loss = |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2);
        let (x, l) = minimize(
            loss,
            &[0.0, 0.0],
            &AdamConfig {
                lr: 0.05,
                iters: 800,
                ..Default::default()
            },
        );
        assert!(l < 1e-4, "loss {l}");
        assert!((x[0] - 3.0).abs() < 0.02);
        assert!((x[1] + 1.0).abs() < 0.02);
    }

    #[test]
    fn initial_1q_roughly_implements_gate() {
        let p = initial_1q(std::f64::consts::FRAC_PI_2, 20.0);
        let (gate_err, _) = pulse_quality_1q(&p, &gates::x90(), 20.0);
        // The seed is not exact (higher harmonics perturb) but near.
        assert!(gate_err < 0.2, "seed too far from X90: {gate_err}");
    }

    #[test]
    fn pert_loss_detects_uncompensated_z() {
        // A plain X90 seed leaves a large first-order Z integral.
        let p = initial_1q(std::f64::consts::FRAC_PI_2, 20.0);
        let (_, first_order) = pulse_quality_1q(&p, &gates::x90(), 20.0);
        assert!(first_order > 0.3, "unoptimized pulse has O(1) Z integral");
    }

    #[test]
    fn short_pert_optimization_improves_both_terms() {
        // A short run must already reduce the loss; full-quality runs live
        // in the calibrate binary.
        let target = gates::x90();
        let p0 = initial_1q(std::f64::consts::FRAC_PI_2, 20.0);
        let loss = |p: &[f64]| pert_1q_loss(p, &target, 20.0, 20.0);
        let before = loss(&p0);
        let (p1, after) = minimize(
            loss,
            &p0,
            &AdamConfig {
                lr: 0.01,
                iters: 60,
                ..Default::default()
            },
        );
        assert!(
            after < before,
            "optimization must improve: {after} !< {before}"
        );
        assert_eq!(p1.len(), 2 * BASIS);
    }
}
