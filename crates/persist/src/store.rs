//! The on-disk artifact store: a content-addressed cache of compilation
//! artifacts shared across processes.
//!
//! Layout: one file per artifact at
//! `<root>/<kind>/<key as 16 hex digits>.zza`, where `key` comes from the
//! workspace's digest machinery (`Circuit::content_digest`,
//! `zz_core::batch::shape_key`, …) and each file is a versioned,
//! checksummed container ([`crate::codec`]).
//!
//! Failure policy — a cache must never be louder than the work it saves:
//!
//! * **Reads**: a missing, truncated, corrupted, stale-version or
//!   wrong-kind file is a *miss* ([`ArtifactStore::get`] returns `None`);
//!   decoding problems are counted, never surfaced as errors.
//! * **Writes**: write-to-temp + atomic rename, so concurrent processes
//!   and crashes can never publish a half-written artifact. An unwritable
//!   or read-only cache directory degrades to in-memory behavior
//!   ([`ArtifactStore::put`] returns `false` and the compiler recomputes).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::codec::{decode_artifact, encode_artifact, ArtifactKind, Decode, Encode};

/// Environment variable naming the cache directory; when set, the figure
/// binaries and examples persist artifacts across runs.
pub const CACHE_DIR_ENV: &str = "ZZ_CACHE_DIR";

/// Read/write counters of one [`ArtifactStore`] (monotone totals since the
/// store was opened).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Successful reads.
    pub hits: usize,
    /// Reads that found no usable artifact (absent, corrupt, or stale).
    pub misses: usize,
    /// Writes that published an artifact.
    pub writes: usize,
    /// Writes that failed (unwritable directory, disk full, …).
    pub write_errors: usize,
}

/// A durable, crash-safe artifact cache rooted at a directory.
///
/// # Example
///
/// ```
/// use zz_persist::{ArtifactKind, ArtifactStore};
///
/// let dir = std::env::temp_dir().join(format!("zz-doc-{}", std::process::id()));
/// let store = ArtifactStore::at(&dir);
/// store.put(ArtifactKind::Calibration, 42, &1.25f64);
/// assert_eq!(store.get::<f64>(ArtifactKind::Calibration, 42), Some(1.25));
/// assert_eq!(store.get::<f64>(ArtifactKind::Calibration, 43), None);
/// let _ = std::fs::remove_dir_all(&dir);
/// ```
#[derive(Debug)]
pub struct ArtifactStore {
    root: PathBuf,
    hits: AtomicUsize,
    misses: AtomicUsize,
    writes: AtomicUsize,
    write_errors: AtomicUsize,
}

impl ArtifactStore {
    /// Opens (without touching the filesystem) a store rooted at `root`;
    /// directories are created lazily on first write.
    pub fn at(root: impl Into<PathBuf>) -> Self {
        ArtifactStore {
            root: root.into(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            writes: AtomicUsize::new(0),
            write_errors: AtomicUsize::new(0),
        }
    }

    /// Opens the store named by the `ZZ_CACHE_DIR` environment variable,
    /// or `None` when the variable is unset or empty.
    pub fn from_env() -> Option<Self> {
        match std::env::var(CACHE_DIR_ENV) {
            Ok(dir) if !dir.is_empty() => Some(ArtifactStore::at(dir)),
            _ => None,
        }
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// A per-device shard of this store, rooted at `<root>/<device>/`.
    ///
    /// Multi-backend deployments give each device its own shard so one
    /// backend's churn (recalibration sweeping its keys, or a damaged
    /// directory) never evicts another backend's warm artifacts. The
    /// shard is an independent [`ArtifactStore`] with its own counters;
    /// non-path-safe characters in `device` are mapped to `_` so any
    /// device name yields a usable directory.
    pub fn shard(&self, device: &str) -> ArtifactStore {
        let safe: String = device
            .chars()
            .map(|c| match c {
                'a'..='z' | 'A'..='Z' | '0'..='9' | '-' | '_' | '.' => c,
                _ => '_',
            })
            .collect();
        let safe = if safe.is_empty() {
            "_".to_string()
        } else {
            safe
        };
        ArtifactStore::at(self.root.join(safe))
    }

    /// The file an artifact lives at.
    pub fn path_of(&self, kind: ArtifactKind, key: u64) -> PathBuf {
        self.root
            .join(kind.dir_name())
            .join(format!("{key:016x}.zza"))
    }

    /// Reads and decodes an artifact; any failure (absent file, truncation,
    /// corruption, stale schema version, wrong kind) is a miss.
    pub fn get<T: Decode>(&self, kind: ArtifactKind, key: u64) -> Option<T> {
        let value = std::fs::read(self.path_of(kind, key))
            .ok()
            .and_then(|bytes| decode_artifact::<T>(kind, &bytes).ok());
        match &value {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        value
    }

    /// Encodes and durably publishes an artifact (write-to-temp + atomic
    /// rename). Returns `false` — degrading to in-memory behavior — when
    /// the directory cannot be written; never panics or errors.
    pub fn put<T: Encode + ?Sized>(&self, kind: ArtifactKind, key: u64, value: &T) -> bool {
        let bytes = encode_artifact(kind, value);
        let path = self.path_of(kind, key);
        let ok = write_atomically(&path, &bytes);
        match ok {
            true => self.writes.fetch_add(1, Ordering::Relaxed),
            false => self.write_errors.fetch_add(1, Ordering::Relaxed),
        };
        ok
    }

    /// Snapshot of the read/write counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
        }
    }
}

/// Writes `bytes` to a unique sibling temp file, then renames it over
/// `path`. The rename is atomic on POSIX, so readers only ever observe
/// complete artifacts; on any error the temp file is removed and the
/// function reports failure.
fn write_atomically(path: &Path, bytes: &[u8]) -> bool {
    let Some(dir) = path.parent() else {
        return false;
    };
    if std::fs::create_dir_all(dir).is_err() {
        return false;
    }
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let tmp = dir.join(format!(
        ".{}.{}.{}.tmp",
        path.file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("artifact"),
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    if std::fs::write(&tmp, bytes).is_err() {
        let _ = std::fs::remove_file(&tmp);
        return false;
    }
    if std::fs::rename(&tmp, path).is_err() {
        let _ = std::fs::remove_file(&tmp);
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn scratch_dir(label: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        std::env::temp_dir().join(format!(
            "zz-persist-{label}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn put_then_get_roundtrips() {
        let dir = scratch_dir("roundtrip");
        let store = ArtifactStore::at(&dir);
        let value = vec![(3usize, f64::NAN), (7usize, -0.0)];
        assert!(store.put(ArtifactKind::Native, 0xabcd, &value));
        let back: Vec<(usize, f64)> = store.get(ArtifactKind::Native, 0xabcd).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].0, 3);
        assert_eq!(back[0].1.to_bits(), f64::NAN.to_bits());
        assert_eq!(back[1].1.to_bits(), (-0.0f64).to_bits());
        assert_eq!(store.stats().hits, 1);
        assert_eq!(store.stats().writes, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn absent_truncated_and_corrupt_files_are_misses() {
        let dir = scratch_dir("corrupt");
        let store = ArtifactStore::at(&dir);
        assert_eq!(store.get::<f64>(ArtifactKind::Calibration, 1), None);

        store.put(ArtifactKind::Calibration, 1, &2.5f64);
        let path = store.path_of(ArtifactKind::Calibration, 1);

        // Truncate.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        assert_eq!(store.get::<f64>(ArtifactKind::Calibration, 1), None);

        // Corrupt one payload byte.
        let mut bad = full.clone();
        *bad.last_mut().unwrap() ^= 0x40;
        std::fs::write(&path, &bad).unwrap();
        assert_eq!(store.get::<f64>(ArtifactKind::Calibration, 1), None);

        // Stale schema version.
        let mut stale = full.clone();
        stale[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &stale).unwrap();
        assert_eq!(store.get::<f64>(ArtifactKind::Calibration, 1), None);

        // The intact bytes still read back fine.
        std::fs::write(&path, &full).unwrap();
        assert_eq!(store.get::<f64>(ArtifactKind::Calibration, 1), Some(2.5));
        assert_eq!(store.stats().misses, 4); // absent + 3 damaged reads
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_root_degrades_silently() {
        // Point the cache root *under a regular file*: every directory
        // creation and write must fail, and the store must shrug.
        let dir = scratch_dir("unwritable");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("not-a-dir");
        std::fs::write(&file, b"occupied").unwrap();
        let store = ArtifactStore::at(file.join("cache"));
        assert!(!store.put(ArtifactKind::Compiled, 9, &1.0f64));
        assert_eq!(store.get::<f64>(ArtifactKind::Compiled, 9), None);
        assert_eq!(store.stats().write_errors, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shards_are_isolated_directories() {
        let dir = scratch_dir("shard");
        let store = ArtifactStore::at(&dir);
        let a = store.shard("dev-a");
        let b = store.shard("dev/b:0"); // sanitized to dev_b_0
        a.put(ArtifactKind::Calibration, 1, &1.0f64);
        b.put(ArtifactKind::Calibration, 1, &2.0f64);
        assert_eq!(a.get::<f64>(ArtifactKind::Calibration, 1), Some(1.0));
        assert_eq!(b.get::<f64>(ArtifactKind::Calibration, 1), Some(2.0));
        assert!(a.root().starts_with(store.root()));
        assert_ne!(a.root(), b.root());
        assert_eq!(b.root(), store.root().join("dev_b_0"));
        // Damaging shard A leaves shard B fully readable.
        std::fs::remove_dir_all(a.root()).unwrap();
        assert_eq!(a.get::<f64>(ArtifactKind::Calibration, 1), None);
        assert_eq!(b.get::<f64>(ArtifactKind::Calibration, 1), Some(2.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kinds_are_namespaced() {
        let dir = scratch_dir("kinds");
        let store = ArtifactStore::at(&dir);
        store.put(ArtifactKind::Calibration, 5, &1.0f64);
        // Same key, different kind: distinct file, and a header kind check
        // would catch a cross-read even if the paths collided.
        assert_eq!(store.get::<f64>(ArtifactKind::Compiled, 5), None);
        assert_eq!(store.get::<f64>(ArtifactKind::Calibration, 5), Some(1.0));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
