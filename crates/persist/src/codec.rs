//! The binary codec: a self-describing, zero-external-dependency
//! serialization format for compilation artifacts.
//!
//! Every artifact file is a *container*:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"ZZAR"
//! 4       4     schema version (u32 LE) — [`SCHEMA_VERSION`]
//! 8       4     artifact kind tag (u32 LE) — [`ArtifactKind`]
//! 12      8     payload length (u64 LE)
//! 20      8     FNV-1a 64 checksum of the payload (u64 LE)
//! 28      n     payload — the [`Encode`]d value
//! ```
//!
//! The payload encoding is deliberately simple: little-endian fixed-width
//! integers, `u64`-length-prefixed sequences, and `f64` stored as its exact
//! IEEE-754 bit pattern ([`f64::to_bits`]) so round-trips are bit-identical
//! even for NaN payloads, signed zeros and denormals.
//!
//! Decoding never panics on malformed input: every read is bounds-checked
//! and returns a [`DecodeError`], which cache layers treat as a miss.

use std::fmt;

/// Version stamp of the artifact schema. Bump whenever the meaning of any
/// persisted key or payload changes ([`crate::store::ArtifactStore`] treats
/// files with any other version as cache misses, never errors).
pub const SCHEMA_VERSION: u32 = 1;

/// Magic bytes opening every artifact container.
pub const MAGIC: [u8; 4] = *b"ZZAR";

/// Size of the fixed container header preceding the payload.
pub const HEADER_LEN: usize = 28;

/// What an artifact file contains (stored in the container header so a file
/// can never be decoded as the wrong type).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArtifactKind {
    /// A pulse-method residual table (`ResidualTable`).
    Calibration,
    /// A routed + native-translated circuit with its source
    /// (`((Circuit, Topology), NativeCircuit)`).
    Native,
    /// A fully compiled plan (`zz_core`'s `Compiled`).
    Compiled,
    /// A calibration-cache snapshot (`Vec<(PulseMethod, ResidualTable)>`).
    CalibSnapshot,
    /// A `zz_net` request envelope (one frame of the wire protocol; never
    /// stored on disk, but stamped with the same magic/version/checksum
    /// container so damaged frames fail typed).
    NetRequest,
    /// A `zz_net` response envelope (the reply frame of the wire
    /// protocol).
    NetResponse,
    /// A `zz_obs` metrics snapshot (the `Stats` endpoint's payload, also
    /// persistable for offline diffing of two scrapes).
    Metrics,
}

impl ArtifactKind {
    /// Stable on-disk tag of the kind (part of the container header).
    pub fn tag(self) -> u32 {
        match self {
            ArtifactKind::Calibration => 1,
            ArtifactKind::Native => 2,
            ArtifactKind::Compiled => 3,
            ArtifactKind::CalibSnapshot => 4,
            ArtifactKind::NetRequest => 5,
            ArtifactKind::NetResponse => 6,
            ArtifactKind::Metrics => 7,
        }
    }

    /// Subdirectory of the cache root holding this kind of artifact.
    pub fn dir_name(self) -> &'static str {
        match self {
            ArtifactKind::Calibration => "calib",
            ArtifactKind::Native => "native",
            ArtifactKind::Compiled => "compiled",
            ArtifactKind::CalibSnapshot => "calib-snapshot",
            ArtifactKind::NetRequest => "net-request",
            ArtifactKind::NetResponse => "net-response",
            ArtifactKind::Metrics => "metrics",
        }
    }
}

/// Why a byte stream failed to decode. Cache layers map every variant to a
/// miss; the distinctions exist for tests and diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value was complete.
    UnexpectedEof,
    /// The container does not start with [`MAGIC`].
    BadMagic,
    /// The container was written under a different [`SCHEMA_VERSION`].
    VersionMismatch {
        /// The version found in the header.
        found: u32,
    },
    /// The header's kind tag differs from the requested [`ArtifactKind`].
    KindMismatch {
        /// The kind tag found in the header.
        found: u32,
    },
    /// The payload does not match the header's checksum (truncation or
    /// corruption).
    ChecksumMismatch,
    /// The payload decoded structurally but violated a type invariant
    /// (e.g. a qubit index out of range).
    Invalid(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "input truncated"),
            DecodeError::BadMagic => write!(f, "bad magic bytes"),
            DecodeError::VersionMismatch { found } => {
                write!(f, "schema version {found} (expected {SCHEMA_VERSION})")
            }
            DecodeError::KindMismatch { found } => {
                write!(f, "artifact kind tag {found} does not match the request")
            }
            DecodeError::ChecksumMismatch => write!(f, "payload checksum mismatch"),
            DecodeError::Invalid(what) => write!(f, "invalid payload: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// FNV-1a 64-bit hash of a byte slice — the container checksum, and the
/// workspace's shared key-mixing primitive.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = fnv1a_mix(h, b as u64);
    }
    h
}

/// One FNV-1a mixing step over a 64-bit word. Every cache-key derivation
/// in the workspace (`Circuit::content_digest`, `zz_core::batch::shape_key`,
/// `zz_core::persist::compiled_artifact_key`) folds words through this one
/// function, so the key families can never drift apart.
pub fn fnv1a_mix(h: u64, w: u64) -> u64 {
    (h ^ w).wrapping_mul(0x0000_0100_0000_01b3)
}

/// Accumulates an encoded payload.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Starts an empty payload.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (portable across word sizes).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` as its exact IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// The encoded payload bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// A bounds-checked cursor over an encoded payload.
#[derive(Debug)]
pub struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Starts reading at the front of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Decoder { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u64` and converts it to `usize`, rejecting values that do
    /// not fit the platform word.
    pub fn usize(&mut self) -> Result<usize, DecodeError> {
        usize::try_from(self.u64()?).map_err(|_| DecodeError::Invalid("usize overflow"))
    }

    /// Reads a sequence length and sanity-checks it against the bytes left:
    /// each element needs at least `min_element_size` bytes, so a corrupted
    /// length can never trigger a huge allocation.
    pub fn seq_len(&mut self, min_element_size: usize) -> Result<usize, DecodeError> {
        let len = self.usize()?;
        if len > self.remaining() / min_element_size.max(1) {
            return Err(DecodeError::UnexpectedEof);
        }
        Ok(len)
    }

    /// Reads an exact IEEE-754 `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool, rejecting anything but 0 or 1.
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Invalid("bool byte")),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.seq_len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::Invalid("utf-8"))
    }

    /// Asserts the payload was fully consumed (trailing garbage is treated
    /// as corruption).
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::Invalid("trailing bytes"))
        }
    }
}

/// A value that can be written to the artifact codec.
pub trait Encode {
    /// Appends this value's payload encoding.
    fn encode(&self, out: &mut Encoder);
}

/// A value that can be read back from the artifact codec.
pub trait Decode: Sized {
    /// Reads one value, validating type invariants.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated, malformed or invariant-
    /// violating input; implementations never panic on bad bytes.
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError>;
}

impl<T: Encode + ?Sized> Encode for &T {
    fn encode(&self, out: &mut Encoder) {
        (**self).encode(out);
    }
}

/// Wraps an encoded value in a versioned, checksummed container.
pub fn encode_artifact<T: Encode + ?Sized>(kind: ArtifactKind, value: &T) -> Vec<u8> {
    let mut enc = Encoder::new();
    value.encode(&mut enc);
    let payload = enc.finish();
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
    out.extend_from_slice(&kind.tag().to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Opens a container, verifies magic/version/kind/length/checksum, and
/// decodes the payload as `T`, requiring full consumption.
///
/// # Errors
///
/// Returns the first [`DecodeError`] encountered; callers that use this as
/// a cache read treat any error as a miss.
pub fn decode_artifact<T: Decode>(kind: ArtifactKind, bytes: &[u8]) -> Result<T, DecodeError> {
    let mut r = Decoder::new(bytes);
    let magic = [r.u8()?, r.u8()?, r.u8()?, r.u8()?];
    if magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = r.u32()?;
    if version != SCHEMA_VERSION {
        return Err(DecodeError::VersionMismatch { found: version });
    }
    let tag = r.u32()?;
    if tag != kind.tag() {
        return Err(DecodeError::KindMismatch { found: tag });
    }
    let len = r.usize()?;
    if len != r.remaining().saturating_sub(8) {
        return Err(DecodeError::ChecksumMismatch);
    }
    let checksum = r.u64()?;
    if fnv1a(&bytes[HEADER_LEN..]) != checksum {
        return Err(DecodeError::ChecksumMismatch);
    }
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

/// Round-trips a value through the payload codec (no container); test and
/// diagnostic helper.
pub fn roundtrip<T: Encode + Decode>(value: &T) -> Result<T, DecodeError> {
    let mut enc = Encoder::new();
    value.encode(&mut enc);
    let bytes = enc.finish();
    let mut dec = Decoder::new(&bytes);
    let out = T::decode(&mut dec)?;
    dec.finish()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut enc = Encoder::new();
        enc.u8(7);
        enc.u32(0xdead_beef);
        enc.u64(u64::MAX);
        enc.usize(12);
        enc.f64(-0.0);
        enc.bool(true);
        enc.str("grid-3x4");
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.u8().unwrap(), 7);
        assert_eq!(dec.u32().unwrap(), 0xdead_beef);
        assert_eq!(dec.u64().unwrap(), u64::MAX);
        assert_eq!(dec.usize().unwrap(), 12);
        assert_eq!(dec.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(dec.bool().unwrap());
        assert_eq!(dec.str().unwrap(), "grid-3x4");
        dec.finish().unwrap();
    }

    #[test]
    fn truncated_reads_are_eof_not_panics() {
        let mut dec = Decoder::new(&[1, 2, 3]);
        assert_eq!(dec.u64().unwrap_err(), DecodeError::UnexpectedEof);
    }

    #[test]
    fn sequence_lengths_are_bounded_by_remaining_bytes() {
        // A length prefix claiming 2^60 elements must not allocate.
        let mut enc = Encoder::new();
        enc.u64(1u64 << 60);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.seq_len(8).unwrap_err(), DecodeError::UnexpectedEof);
    }

    #[test]
    fn container_rejects_tampering() {
        #[derive(Debug)]
        struct Blob(u64);
        impl Encode for Blob {
            fn encode(&self, out: &mut Encoder) {
                out.u64(self.0);
            }
        }
        impl Decode for Blob {
            fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
                Ok(Blob(r.u64()?))
            }
        }
        let good = encode_artifact(ArtifactKind::Calibration, &Blob(42));
        assert_eq!(
            decode_artifact::<Blob>(ArtifactKind::Calibration, &good)
                .unwrap()
                .0,
            42
        );

        // Wrong magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert_eq!(
            decode_artifact::<Blob>(ArtifactKind::Calibration, &bad).unwrap_err(),
            DecodeError::BadMagic
        );

        // Stale schema version.
        let mut bad = good.clone();
        bad[4..8].copy_from_slice(&(SCHEMA_VERSION + 1).to_le_bytes());
        assert_eq!(
            decode_artifact::<Blob>(ArtifactKind::Calibration, &bad).unwrap_err(),
            DecodeError::VersionMismatch {
                found: SCHEMA_VERSION + 1
            }
        );

        // Wrong kind.
        assert_eq!(
            decode_artifact::<Blob>(ArtifactKind::Native, &good).unwrap_err(),
            DecodeError::KindMismatch { found: 1 }
        );

        // Flipped payload byte.
        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 1;
        assert_eq!(
            decode_artifact::<Blob>(ArtifactKind::Calibration, &bad).unwrap_err(),
            DecodeError::ChecksumMismatch
        );

        // Truncation anywhere in the file.
        for cut in 0..good.len() {
            assert!(
                decode_artifact::<Blob>(ArtifactKind::Calibration, &good[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }
}
