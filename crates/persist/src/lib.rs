//! `zz_persist` — versioned artifact codec + on-disk compilation cache.
//!
//! The batch engine ([`zz_core::batch`]) memoizes routing and calibration
//! *within one process*; this crate makes those artifacts durable so a new
//! process — a rerun figure binary, a test, a restarted service — warm-
//! starts from disk instead of re-running Hamiltonian simulations and
//! routing. Two layers:
//!
//! * **[`codec`]** — a self-describing binary format (magic bytes, schema
//!   version, FNV-checksummed payload) with [`Encode`]/[`Decode`]
//!   implementations for every artifact type that crosses process
//!   boundaries. Zero external dependencies (the workspace's hermetic
//!   build forbids serde); `f64` fields round-trip bit-identically.
//! * **[`store`]** — a content-addressed [`ArtifactStore`] rooted at a
//!   cache directory (`ZZ_CACHE_DIR` or an explicit path), with
//!   write-to-temp + atomic-rename crash safety. Checksum or version
//!   mismatches are cache *misses*, never errors, and an unwritable
//!   directory degrades to in-memory behavior.
//!
//! `zz_core` wires the store through `CalibCache` (snapshot export/import)
//! and `BatchCompiler` (persistent routing memo + compiled plans); see
//! `ARCHITECTURE.md` for the cache hierarchy.
//!
//! [`zz_core::batch`]: ../zz_core/batch/index.html

#![warn(missing_docs)]

pub mod codec;
mod impls;
pub mod store;

pub use codec::{
    decode_artifact, encode_artifact, fnv1a, fnv1a_mix, roundtrip, ArtifactKind, Decode,
    DecodeError, Decoder, Encode, Encoder, SCHEMA_VERSION,
};
pub use store::{ArtifactStore, StoreStats, CACHE_DIR_ENV};
