//! [`Encode`]/[`Decode`] implementations for the artifact types that cross
//! process boundaries, plus the generic containers they are built from.
//!
//! Every implementation round-trips bit-identically: `f64` fields are
//! stored as raw IEEE-754 bit patterns, and decoding re-validates the type
//! invariants the in-memory constructors enforce (qubit bounds, arities)
//! so a corrupted payload yields a [`DecodeError`] instead of a panic.

use zz_circuit::native::{NativeCircuit, NativeOp};
use zz_circuit::{Circuit, Gate, Op};
use zz_pulse::library::PulseMethod;
use zz_sched::zzx::Requirement;
use zz_sched::{CutMetrics, GateDurations, Layer, SchedulePlan};
use zz_sim::executor::ResidualTable;
use zz_topology::Topology;

use crate::codec::{Decode, DecodeError, Decoder, Encode, Encoder};

// ---------------------------------------------------------------------------
// Generic containers
// ---------------------------------------------------------------------------

impl Encode for u64 {
    fn encode(&self, out: &mut Encoder) {
        out.u64(*self);
    }
}

impl Decode for u64 {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.u64()
    }
}

impl Encode for usize {
    fn encode(&self, out: &mut Encoder) {
        out.usize(*self);
    }
}

impl Decode for usize {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.usize()
    }
}

impl Encode for f64 {
    fn encode(&self, out: &mut Encoder) {
        out.f64(*self);
    }
}

impl Decode for f64 {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.f64()
    }
}

impl Encode for bool {
    fn encode(&self, out: &mut Encoder) {
        out.bool(*self);
    }
}

impl Decode for bool {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.bool()
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Encoder) {
        out.str(self);
    }
}

impl Decode for String {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.str()
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, out: &mut Encoder) {
        out.usize(self.len());
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        // Every element consumes at least one byte, so the length check in
        // `seq_len` bounds the allocation by the remaining input size.
        let len = r.seq_len(1)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Encoder) {
        match self {
            None => out.bool(false),
            Some(v) => {
                out.bool(true);
                v.encode(out);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        if r.bool()? {
            Ok(Some(T::decode(r)?))
        } else {
            Ok(None)
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, out: &mut Encoder) {
        self.0.encode(out);
        self.1.encode(out);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

// ---------------------------------------------------------------------------
// Pulse / calibration primitives
// ---------------------------------------------------------------------------

impl Encode for PulseMethod {
    fn encode(&self, out: &mut Encoder) {
        out.u8(match self {
            PulseMethod::Gaussian => 0,
            PulseMethod::OptCtrl => 1,
            PulseMethod::Pert => 2,
            PulseMethod::Dcg => 3,
        });
    }
}

impl Decode for PulseMethod {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match r.u8()? {
            0 => PulseMethod::Gaussian,
            1 => PulseMethod::OptCtrl,
            2 => PulseMethod::Pert,
            3 => PulseMethod::Dcg,
            _ => return Err(DecodeError::Invalid("pulse method tag")),
        })
    }
}

impl Encode for ResidualTable {
    fn encode(&self, out: &mut Encoder) {
        out.f64(self.x90);
        out.f64(self.id);
        out.f64(self.zx90_control);
        out.f64(self.zx90_target);
    }
}

impl Decode for ResidualTable {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(ResidualTable {
            x90: r.f64()?,
            id: r.f64()?,
            zx90_control: r.f64()?,
            zx90_target: r.f64()?,
        })
    }
}

impl Encode for GateDurations {
    fn encode(&self, out: &mut Encoder) {
        out.f64(self.x90);
        out.f64(self.zx90);
        out.f64(self.id);
    }
}

impl Decode for GateDurations {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(GateDurations {
            x90: r.f64()?,
            zx90: r.f64()?,
            id: r.f64()?,
        })
    }
}

impl Encode for Requirement {
    fn encode(&self, out: &mut Encoder) {
        out.usize(self.nq_limit);
        out.usize(self.nc_limit);
    }
}

impl Decode for Requirement {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Requirement {
            nq_limit: r.usize()?,
            nc_limit: r.usize()?,
        })
    }
}

// ---------------------------------------------------------------------------
// Gates and circuits
// ---------------------------------------------------------------------------

impl Encode for Gate {
    fn encode(&self, out: &mut Encoder) {
        let (tag, params): (u8, &[f64]) = match self {
            Gate::H => (0, &[]),
            Gate::X => (1, &[]),
            Gate::Y => (2, &[]),
            Gate::Z => (3, &[]),
            Gate::S => (4, &[]),
            Gate::Sdg => (5, &[]),
            Gate::T => (6, &[]),
            Gate::Tdg => (7, &[]),
            Gate::Rx(t) => (8, std::slice::from_ref(t)),
            Gate::Ry(t) => (9, std::slice::from_ref(t)),
            Gate::Rz(t) => (10, std::slice::from_ref(t)),
            Gate::Phase(t) => (11, std::slice::from_ref(t)),
            Gate::U3(..) => (12, &[]),
            Gate::Cnot => (13, &[]),
            Gate::Cz => (14, &[]),
            Gate::CPhase(t) => (15, std::slice::from_ref(t)),
            Gate::Rzz(t) => (16, std::slice::from_ref(t)),
            Gate::Swap => (17, &[]),
            Gate::SqrtX => (18, &[]),
            Gate::SqrtY => (19, &[]),
            Gate::SqrtW => (20, &[]),
        };
        out.u8(tag);
        for &p in params {
            out.f64(p);
        }
        if let Gate::U3(t, p, l) = *self {
            out.f64(t);
            out.f64(p);
            out.f64(l);
        }
    }
}

impl Decode for Gate {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match r.u8()? {
            0 => Gate::H,
            1 => Gate::X,
            2 => Gate::Y,
            3 => Gate::Z,
            4 => Gate::S,
            5 => Gate::Sdg,
            6 => Gate::T,
            7 => Gate::Tdg,
            8 => Gate::Rx(r.f64()?),
            9 => Gate::Ry(r.f64()?),
            10 => Gate::Rz(r.f64()?),
            11 => Gate::Phase(r.f64()?),
            12 => Gate::U3(r.f64()?, r.f64()?, r.f64()?),
            13 => Gate::Cnot,
            14 => Gate::Cz,
            15 => Gate::CPhase(r.f64()?),
            16 => Gate::Rzz(r.f64()?),
            17 => Gate::Swap,
            18 => Gate::SqrtX,
            19 => Gate::SqrtY,
            20 => Gate::SqrtW,
            _ => return Err(DecodeError::Invalid("gate tag")),
        })
    }
}

impl Encode for Circuit {
    fn encode(&self, out: &mut Encoder) {
        out.usize(self.qubit_count());
        out.usize(self.ops().len());
        for op in self.ops() {
            op.gate.encode(out);
            op.qubits.encode(out);
        }
    }
}

impl Decode for Circuit {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let qubit_count = r.usize()?;
        let op_count = r.seq_len(2)?;
        let mut circuit = Circuit::new(qubit_count);
        for _ in 0..op_count {
            let gate = Gate::decode(r)?;
            let qubits: Vec<usize> = Vec::decode(r)?;
            // Re-check the invariants `Circuit::push` asserts, so corrupt
            // payloads error instead of panicking.
            if qubits.len() != gate.arity() {
                return Err(DecodeError::Invalid("gate arity"));
            }
            if qubits.iter().any(|&q| q >= qubit_count) {
                return Err(DecodeError::Invalid("qubit out of range"));
            }
            if qubits.len() == 2 && qubits[0] == qubits[1] {
                return Err(DecodeError::Invalid("repeated qubit"));
            }
            circuit.push(gate, &qubits);
        }
        Ok(circuit)
    }
}

impl Encode for Op {
    fn encode(&self, out: &mut Encoder) {
        self.gate.encode(out);
        self.qubits.encode(out);
    }
}

impl Encode for NativeOp {
    fn encode(&self, out: &mut Encoder) {
        match *self {
            NativeOp::Rz { qubit, theta } => {
                out.u8(0);
                out.usize(qubit);
                out.f64(theta);
            }
            NativeOp::X90 { qubit } => {
                out.u8(1);
                out.usize(qubit);
            }
            NativeOp::Zx90 { control, target } => {
                out.u8(2);
                out.usize(control);
                out.usize(target);
            }
            NativeOp::Id { qubit } => {
                out.u8(3);
                out.usize(qubit);
            }
        }
    }
}

impl Decode for NativeOp {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match r.u8()? {
            0 => NativeOp::Rz {
                qubit: r.usize()?,
                theta: r.f64()?,
            },
            1 => NativeOp::X90 { qubit: r.usize()? },
            2 => NativeOp::Zx90 {
                control: r.usize()?,
                target: r.usize()?,
            },
            3 => NativeOp::Id { qubit: r.usize()? },
            _ => return Err(DecodeError::Invalid("native op tag")),
        })
    }
}

/// Re-checks the invariants `NativeCircuit::push` asserts.
fn check_native_op(op: &NativeOp, qubit_count: usize) -> Result<(), DecodeError> {
    if op.qubits().iter().any(|&q| q >= qubit_count) {
        return Err(DecodeError::Invalid("qubit out of range"));
    }
    if let NativeOp::Zx90 { control, target } = op {
        if control == target {
            return Err(DecodeError::Invalid("repeated qubit"));
        }
    }
    Ok(())
}

impl Encode for NativeCircuit {
    fn encode(&self, out: &mut Encoder) {
        out.usize(self.qubit_count());
        self.ops().to_vec().encode(out);
    }
}

impl Decode for NativeCircuit {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let qubit_count = r.usize()?;
        let ops: Vec<NativeOp> = Vec::decode(r)?;
        let mut circuit = NativeCircuit::new(qubit_count);
        for op in ops {
            check_native_op(&op, qubit_count)?;
            circuit.push(op);
        }
        Ok(circuit)
    }
}

// ---------------------------------------------------------------------------
// Topologies and schedules
// ---------------------------------------------------------------------------

impl Encode for Topology {
    fn encode(&self, out: &mut Encoder) {
        out.str(self.name());
        let coords: Vec<(f64, f64)> = (0..self.qubit_count()).map(|q| self.coord(q)).collect();
        coords.encode(out);
        self.couplings().to_vec().encode(out);
    }
}

impl Decode for Topology {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let name = r.str()?;
        let coords: Vec<(f64, f64)> = Vec::decode(r)?;
        let edges: Vec<(usize, usize)> = Vec::decode(r)?;
        // `Topology::new` re-validates and deterministically rebuilds the
        // rotation system and faces, so the round-trip compares equal.
        Topology::new(name, coords, edges).map_err(|_| DecodeError::Invalid("topology"))
    }
}

impl Encode for CutMetrics {
    fn encode(&self, out: &mut Encoder) {
        out.usize(self.nc);
        out.usize(self.nq);
        self.suppressed.encode(out);
    }
}

impl Decode for CutMetrics {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(CutMetrics {
            nc: r.usize()?,
            nq: r.usize()?,
            suppressed: Vec::decode(r)?,
        })
    }
}

impl Encode for Layer {
    fn encode(&self, out: &mut Encoder) {
        self.rz_before.encode(out);
        self.ops.encode(out);
        self.pulsed.encode(out);
        self.metrics.encode(out);
    }
}

impl Decode for Layer {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Layer {
            rz_before: Vec::decode(r)?,
            ops: Vec::decode(r)?,
            pulsed: Vec::decode(r)?,
            metrics: CutMetrics::decode(r)?,
        })
    }
}

impl Encode for SchedulePlan {
    fn encode(&self, out: &mut Encoder) {
        out.usize(self.qubit_count());
        self.layers.encode(out);
        self.final_rz.encode(out);
    }
}

impl Decode for SchedulePlan {
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let qubit_count = r.usize()?;
        let layers: Vec<Layer> = Vec::decode(r)?;
        let final_rz: Vec<(usize, f64)> = Vec::decode(r)?;
        for layer in &layers {
            for op in &layer.ops {
                check_native_op(op, qubit_count)?;
            }
            if layer.pulsed.len() != qubit_count {
                return Err(DecodeError::Invalid("pulsed vector length"));
            }
            if layer.rz_before.iter().any(|&(q, _)| q >= qubit_count) {
                return Err(DecodeError::Invalid("rz qubit out of range"));
            }
        }
        if final_rz.iter().any(|&(q, _)| q >= qubit_count) {
            return Err(DecodeError::Invalid("rz qubit out of range"));
        }
        Ok(SchedulePlan::from_parts(qubit_count, layers, final_rz))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::roundtrip;

    /// The `f64` edge cases every payload field must survive bit-exactly.
    pub fn weird_f64s() -> Vec<f64> {
        vec![
            0.0,
            -0.0,
            1.5,
            -std::f64::consts::PI,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::from_bits(0x7ff8_0000_dead_beef), // NaN with payload bits
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 1024.0, // denormal
            f64::from_bits(1),          // smallest denormal
            f64::MAX,
        ]
    }

    fn assert_bits_eq(a: f64, b: f64) {
        assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
    }

    #[test]
    fn f64_edge_cases_roundtrip_bit_exactly() {
        for x in weird_f64s() {
            assert_bits_eq(x, roundtrip(&x).unwrap());
        }
    }

    #[test]
    fn gates_roundtrip_including_weird_angles() {
        let mut gates = vec![
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Cnot,
            Gate::Cz,
            Gate::Swap,
            Gate::SqrtX,
            Gate::SqrtY,
            Gate::SqrtW,
        ];
        for t in weird_f64s() {
            gates.push(Gate::Rx(t));
            gates.push(Gate::Ry(t));
            gates.push(Gate::Rz(t));
            gates.push(Gate::Phase(t));
            gates.push(Gate::CPhase(t));
            gates.push(Gate::Rzz(t));
            gates.push(Gate::U3(t, -t, t * 0.5));
        }
        for g in gates {
            let back = roundtrip(&g).unwrap();
            // PartialEq is false for NaN angles; compare the digest parts'
            // bit patterns via Debug formatting of the raw bits instead.
            assert_eq!(format!("{:?}", raw(g)), format!("{:?}", raw(back)));
        }
    }

    /// Maps a gate to its variant tag plus exact angle bits.
    fn raw(g: Gate) -> (u8, Vec<u64>) {
        let mut enc = Encoder::new();
        g.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        let tag = dec.u8().unwrap();
        let mut bits = Vec::new();
        while dec.remaining() > 0 {
            bits.push(dec.u64().unwrap());
        }
        (tag, bits)
    }

    #[test]
    fn circuits_roundtrip() {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0])
            .push(Gate::Cnot, &[0, 1])
            .push(Gate::Rz(0.7), &[2])
            .push(Gate::Rzz(-1.3), &[1, 2])
            .push(Gate::U3(0.1, 0.2, 0.3), &[0]);
        let back = roundtrip(&c).unwrap();
        assert_eq!(c, back);
        assert_eq!(c.content_digest(), back.content_digest());
    }

    #[test]
    fn corrupt_circuit_errors_instead_of_panicking() {
        let mut enc = Encoder::new();
        Circuit::new(2).encode(&mut enc);
        let mut bytes = enc.finish();
        // Claim one op but supply garbage.
        bytes[8] = 1;
        let mut dec = Decoder::new(&bytes);
        assert!(Circuit::decode(&mut dec).is_err());

        // An op addressing a qubit outside the register.
        let mut c = Circuit::new(9);
        c.push(Gate::X, &[8]);
        let mut enc = Encoder::new();
        c.encode(&mut enc);
        let mut bytes = enc.finish();
        bytes[0] = 2; // shrink the register under the op
        let mut dec = Decoder::new(&bytes);
        assert_eq!(
            Circuit::decode(&mut dec).unwrap_err(),
            DecodeError::Invalid("qubit out of range")
        );
    }

    #[test]
    fn native_circuits_roundtrip() {
        let mut n = NativeCircuit::new(3);
        n.push(NativeOp::Rz {
            qubit: 0,
            theta: -0.0,
        });
        n.push(NativeOp::X90 { qubit: 1 });
        n.push(NativeOp::Zx90 {
            control: 1,
            target: 2,
        });
        n.push(NativeOp::Id { qubit: 0 });
        assert_eq!(n, roundtrip(&n).unwrap());
    }

    #[test]
    fn topologies_roundtrip() {
        for topo in [
            Topology::grid(3, 4),
            Topology::line(5),
            Topology::ibmq_vigo(),
            Topology::heavy_hex_cell(),
            Topology::grid_with_diagonal(),
        ] {
            assert_eq!(topo, roundtrip(&topo).unwrap());
        }
    }

    #[test]
    fn residual_tables_roundtrip() {
        for x in weird_f64s() {
            let t = ResidualTable {
                x90: x,
                id: 0.25,
                zx90_control: -x,
                zx90_target: 1.0,
            };
            let back = roundtrip(&t).unwrap();
            assert_bits_eq(t.x90, back.x90);
            assert_bits_eq(t.id, back.id);
            assert_bits_eq(t.zx90_control, back.zx90_control);
            assert_bits_eq(t.zx90_target, back.zx90_target);
        }
    }

    #[test]
    fn pulse_methods_and_durations_roundtrip() {
        for m in PulseMethod::ALL {
            assert_eq!(m, roundtrip(&m).unwrap());
        }
        for d in [GateDurations::standard(), GateDurations::dcg()] {
            assert_eq!(d, roundtrip(&d).unwrap());
        }
    }
}
