//! Minimum-cost perfect matching on small complete graphs.
//!
//! The paper pairs the odd-degree vertices of the dual graph by
//! *maximum-weight* matching with weights `L − d(u,v)` (`L` larger than any
//! distance), which makes the maximum-weight matching perfect and equivalent
//! to **minimum total distance** perfect matching — the form implemented
//! here.
//!
//! Instead of the blossom algorithm the paper cites, this module uses an
//! exact `O(2ⁿ·n)` bitmask dynamic program for up to [`EXACT_LIMIT`]
//! vertices (every device the paper evaluates produces far fewer odd
//! vertices) and a greedy + 2-opt local-search fallback beyond that. The
//! substitution is recorded in `DESIGN.md` and property-tested against brute
//! force.

/// Maximum vertex count for which the exact DP is used.
pub const EXACT_LIMIT: usize = 20;

/// Finds a perfect matching of minimum total cost on the complete graph
/// whose costs are given by `cost(i, j)`.
///
/// Returns pairs `(i, j)` with `i < j` covering every vertex exactly once.
///
/// # Panics
///
/// Panics if `n` is odd (no perfect matching exists).
///
/// # Example
///
/// ```
/// use zz_graph::matching::min_cost_perfect_matching;
///
/// // Points on a line: optimal pairing is adjacent pairs.
/// let xs = [0.0f64, 1.0, 10.0, 11.0];
/// let m = min_cost_perfect_matching(4, |i, j| (xs[i] - xs[j]).abs());
/// assert_eq!(m, vec![(0, 1), (2, 3)]);
/// ```
pub fn min_cost_perfect_matching(
    n: usize,
    cost: impl Fn(usize, usize) -> f64,
) -> Vec<(usize, usize)> {
    assert!(
        n.is_multiple_of(2),
        "perfect matching requires an even vertex count"
    );
    if n == 0 {
        return Vec::new();
    }
    if n <= EXACT_LIMIT {
        exact_dp(n, &cost)
    } else {
        greedy_two_opt(n, &cost)
    }
}

/// Exact bitmask DP: `dp[mask]` = minimum cost to perfectly match the
/// vertices in `mask`.
fn exact_dp(n: usize, cost: &impl Fn(usize, usize) -> f64) -> Vec<(usize, usize)> {
    let full = (1usize << n) - 1;
    let mut dp = vec![f64::INFINITY; full + 1];
    let mut choice: Vec<Option<(usize, usize)>> = vec![None; full + 1];
    dp[0] = 0.0;
    for mask in 0..=full {
        if dp[mask].is_infinite() {
            continue;
        }
        if mask == full {
            break;
        }
        // First unmatched vertex must pair with someone: no redundant states.
        let i = (!mask).trailing_zeros() as usize;
        for j in (i + 1)..n {
            if mask & (1 << j) == 0 {
                let next = mask | (1 << i) | (1 << j);
                let c = dp[mask] + cost(i, j);
                if c < dp[next] {
                    dp[next] = c;
                    choice[next] = Some((i, j));
                }
            }
        }
    }
    // Reconstruct.
    let mut pairs = Vec::with_capacity(n / 2);
    let mut mask = full;
    while mask != 0 {
        let (i, j) = choice[mask].expect("full matching must be reachable");
        pairs.push((i, j));
        mask &= !((1 << i) | (1 << j));
    }
    pairs.sort_unstable();
    pairs
}

/// Greedy nearest-pair matching improved by 2-opt swaps until a local
/// optimum. Used only beyond [`EXACT_LIMIT`] vertices.
fn greedy_two_opt(n: usize, cost: &impl Fn(usize, usize) -> f64) -> Vec<(usize, usize)> {
    // Greedy: repeatedly take the globally cheapest remaining pair.
    let mut unmatched: Vec<usize> = (0..n).collect();
    let mut pairs = Vec::with_capacity(n / 2);
    while !unmatched.is_empty() {
        let mut best = (0usize, 1usize, f64::INFINITY);
        for a in 0..unmatched.len() {
            for b in (a + 1)..unmatched.len() {
                let c = cost(unmatched[a], unmatched[b]);
                if c < best.2 {
                    best = (a, b, c);
                }
            }
        }
        let (a, b, _) = best;
        let (u, v) = (unmatched[a], unmatched[b]);
        pairs.push((u.min(v), u.max(v)));
        // Remove b first (larger index) to keep a valid.
        unmatched.swap_remove(b);
        unmatched.swap_remove(a);
    }

    // 2-opt: for each pair of pairs, try the two alternative re-pairings.
    let mut improved = true;
    while improved {
        improved = false;
        for p in 0..pairs.len() {
            for q in (p + 1)..pairs.len() {
                let (a, b) = pairs[p];
                let (c, d) = pairs[q];
                let current = cost(a, b) + cost(c, d);
                let alt1 = cost(a, c) + cost(b, d);
                let alt2 = cost(a, d) + cost(b, c);
                if alt1 < current - 1e-12 && alt1 <= alt2 {
                    pairs[p] = (a.min(c), a.max(c));
                    pairs[q] = (b.min(d), b.max(d));
                    improved = true;
                } else if alt2 < current - 1e-12 {
                    pairs[p] = (a.min(d), a.max(d));
                    pairs[q] = (b.min(c), b.max(c));
                    improved = true;
                }
            }
        }
    }
    pairs.sort_unstable();
    pairs
}

/// Total cost of a matching under `cost`.
pub fn matching_cost(pairs: &[(usize, usize)], cost: impl Fn(usize, usize) -> f64) -> f64 {
    pairs.iter().map(|&(i, j)| cost(i, j)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force optimal matching cost by recursion (for cross-checks).
    fn brute_force(n: usize, cost: &impl Fn(usize, usize) -> f64) -> f64 {
        fn rec(remaining: &mut [usize], cost: &impl Fn(usize, usize) -> f64) -> f64 {
            if remaining.is_empty() {
                return 0.0;
            }
            let i = remaining[0];
            let mut best = f64::INFINITY;
            for idx in 1..remaining.len() {
                let j = remaining[idx];
                let mut rest: Vec<usize> = remaining[1..].to_vec();
                rest.retain(|&x| x != j);
                let c = cost(i, j) + rec(&mut rest, cost);
                if c < best {
                    best = c;
                }
            }
            best
        }
        rec(&mut (0..n).collect::<Vec<_>>(), cost)
    }

    #[test]
    fn empty_matching() {
        assert!(min_cost_perfect_matching(0, |_, _| 0.0).is_empty());
    }

    #[test]
    fn two_vertices_pair_up() {
        assert_eq!(min_cost_perfect_matching(2, |_, _| 1.0), vec![(0, 1)]);
    }

    #[test]
    fn dp_matches_brute_force_on_pseudorandom_costs() {
        for n in [4usize, 6, 8, 10] {
            let cost = move |i: usize, j: usize| {
                // Deterministic pseudo-random symmetric cost.
                let h = (i.min(j) * 31 + i.max(j) * 17) % 97;
                1.0 + h as f64
            };
            let m = min_cost_perfect_matching(n, cost);
            assert_eq!(m.len(), n / 2);
            let got = matching_cost(&m, cost);
            let want = brute_force(n, &cost);
            assert!((got - want).abs() < 1e-9, "n={n}: got {got}, want {want}");
        }
    }

    #[test]
    fn matching_covers_every_vertex_once() {
        let m = min_cost_perfect_matching(8, |i, j| ((i * j) % 7) as f64 + 1.0);
        let mut seen = [false; 8];
        for (i, j) in m {
            assert!(!seen[i] && !seen[j], "vertex matched twice");
            seen[i] = true;
            seen[j] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "even vertex count")]
    fn odd_count_panics() {
        let _ = min_cost_perfect_matching(3, |_, _| 1.0);
    }

    #[test]
    fn greedy_fallback_is_valid_and_locally_optimal() {
        // Force the fallback path with n > EXACT_LIMIT.
        let n = EXACT_LIMIT + 2;
        let cost = |i: usize, j: usize| ((i as f64) - (j as f64)).abs();
        let m = greedy_two_opt(n, &cost);
        assert_eq!(m.len(), n / 2);
        let mut seen = vec![false; n];
        for &(i, j) in &m {
            assert!(!seen[i] && !seen[j]);
            seen[i] = true;
            seen[j] = true;
        }
        // On a line metric, adjacent pairing is optimal: cost = n/2.
        assert!((matching_cost(&m, cost) - (n / 2) as f64).abs() < 1e-9);
    }
}
