//! Disjoint-set forest with path compression and union by rank.

/// A union-find (disjoint-set) structure over `0..n`.
///
/// Used to *contract* edges of a topology graph: merging the endpoints of
/// every contracted edge yields the quotient graph on which the cut is
/// 2-colored.
///
/// # Example
///
/// ```
/// use zz_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// assert_eq!(uf.set_count(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u32>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Resets to `n` singleton sets, reusing the existing allocations.
    pub fn reset(&mut self, n: usize) {
        self.parent.clear();
        self.parent.extend(0..n);
        self.rank.clear();
        self.rank.resize(n, 0);
        self.sets = n;
    }

    /// Representative of the set containing `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`; returns `true` if they were
    /// previously separate.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.sets -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure tracks zero elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_disconnected() {
        let mut uf = UnionFind::new(3);
        assert!(!uf.connected(0, 2));
        assert_eq!(uf.set_count(), 3);
    }

    #[test]
    fn union_is_transitive() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        assert!(uf.connected(0, 2));
        assert_eq!(uf.set_count(), 3);
    }

    #[test]
    fn redundant_union_returns_false() {
        let mut uf = UnionFind::new(2);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.set_count(), 1);
    }
}
