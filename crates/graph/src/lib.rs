//! Graph algorithms backing the α-optimal suppression scheduler.
//!
//! The paper's Algorithm 1 needs, on the (multi-)dual graph of the device
//! topology:
//!
//! * shortest paths and **Yen's top-k shortest simple paths** ([`yen`]) to
//!   generate candidate odd-vertex pairings,
//! * **minimum-cost perfect matching** ([`matching`]) to pair odd-degree
//!   vertices (the paper uses maximum-weight matching with weights
//!   `L − d(u,v)`, which is the same problem),
//! * **union-find contraction** ([`UnionFind`]) and **constrained
//!   2-coloring** ([`two_color`]) to induce a cut from a pairing,
//! * **connected components** ([`components`]) for the `NQ` metric.
//!
//! Graphs are represented as [`MultiGraph`]s: parallel edges and self-loops
//! are first-class, because planar dual graphs routinely contain both.

#![warn(missing_docs)]

mod coloring;
mod components;
pub mod matching;
mod multigraph;
mod paths;
mod union_find;

pub use coloring::{two_color, ColorConstraint};
pub use components::{
    components, components_with, largest_component_size, largest_component_size_with,
    ComponentScratch,
};
pub use multigraph::{EdgeId, MultiGraph, MAX_INDEX};
pub use paths::{
    bfs_distances, bfs_distances_with, shortest_path, shortest_path_with, yen, BfsScratch, Path,
};
pub use union_find::UnionFind;
