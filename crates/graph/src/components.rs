//! Connected components over explicit edge lists.

use crate::UnionFind;

/// Computes connected components of `n` vertices under the given edges.
///
/// Returns a component id per vertex, with ids numbered `0..` in order of
/// first appearance.
///
/// # Example
///
/// ```
/// use zz_graph::components;
///
/// let comp = components(5, &[(0, 1), (3, 4)]);
/// assert_eq!(comp[0], comp[1]);
/// assert_ne!(comp[0], comp[2]);
/// assert_eq!(comp[3], comp[4]);
/// ```
pub fn components(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    let mut scratch = ComponentScratch::new();
    components_with(n, edges, &mut scratch).to_vec()
}

/// Reusable working state for repeated component queries.
///
/// Per-layer scheduling metrics recompute components once per layer; on
/// large devices reusing this scratch avoids re-allocating the union-find
/// forest each time.
#[derive(Clone, Debug, Default)]
pub struct ComponentScratch {
    uf: UnionFind,
    ids: Vec<usize>,
    out: Vec<usize>,
    sizes: Vec<usize>,
}

impl ComponentScratch {
    /// Creates an empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        ComponentScratch::default()
    }
}

/// Allocation-free variant of [`components`] reusing `scratch`.
///
/// The returned slice has one component id per vertex and is valid until
/// the next query through the same scratch.
pub fn components_with<'s>(
    n: usize,
    edges: &[(usize, usize)],
    scratch: &'s mut ComponentScratch,
) -> &'s [usize] {
    scratch.uf.reset(n);
    for &(u, v) in edges {
        scratch.uf.union(u, v);
    }
    scratch.ids.clear();
    scratch.ids.resize(n, usize::MAX);
    scratch.out.clear();
    scratch.out.resize(n, 0);
    let mut next = 0;
    for v in 0..n {
        let root = scratch.uf.find(v);
        if scratch.ids[root] == usize::MAX {
            scratch.ids[root] = next;
            next += 1;
        }
        scratch.out[v] = scratch.ids[root];
    }
    &scratch.out[..n]
}

/// Size of the largest connected component — the paper's `NQ` metric when
/// applied to the remaining-set of a cut.
///
/// Isolated vertices count as components of size 1, matching the paper's
/// definition (`NQ` of a fully suppressed layer is 1, not 0).
pub fn largest_component_size(n: usize, edges: &[(usize, usize)]) -> usize {
    let mut scratch = ComponentScratch::new();
    largest_component_size_with(n, edges, &mut scratch)
}

/// Allocation-free variant of [`largest_component_size`] reusing `scratch`.
pub fn largest_component_size_with(
    n: usize,
    edges: &[(usize, usize)],
    scratch: &mut ComponentScratch,
) -> usize {
    if n == 0 {
        return 0;
    }
    components_with(n, edges, scratch);
    let count = scratch.out.iter().max().map(|&m| m + 1).unwrap_or(0);
    scratch.sizes.clear();
    scratch.sizes.resize(count, 0);
    for &c in &scratch.out {
        scratch.sizes[c] += 1;
    }
    scratch.sizes.iter().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_edges_gives_singletons() {
        assert_eq!(largest_component_size(4, &[]), 1);
        let comp = components(3, &[]);
        assert_eq!(comp, vec![0, 1, 2]);
    }

    #[test]
    fn chain_is_one_component() {
        let edges = [(0, 1), (1, 2), (2, 3)];
        assert_eq!(largest_component_size(4, &edges), 4);
    }

    #[test]
    fn two_components_report_larger() {
        let edges = [(0, 1), (2, 3), (3, 4)];
        assert_eq!(largest_component_size(5, &edges), 3);
    }

    #[test]
    fn empty_graph() {
        assert_eq!(largest_component_size(0, &[]), 0);
    }
}
