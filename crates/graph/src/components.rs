//! Connected components over explicit edge lists.

use crate::UnionFind;

/// Computes connected components of `n` vertices under the given edges.
///
/// Returns a component id per vertex, with ids numbered `0..` in order of
/// first appearance.
///
/// # Example
///
/// ```
/// use zz_graph::components;
///
/// let comp = components(5, &[(0, 1), (3, 4)]);
/// assert_eq!(comp[0], comp[1]);
/// assert_ne!(comp[0], comp[2]);
/// assert_eq!(comp[3], comp[4]);
/// ```
pub fn components(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    let mut uf = UnionFind::new(n);
    for &(u, v) in edges {
        uf.union(u, v);
    }
    let mut ids = vec![usize::MAX; n];
    let mut next = 0;
    let mut out = vec![0; n];
    for (v, slot) in out.iter_mut().enumerate() {
        let root = uf.find(v);
        if ids[root] == usize::MAX {
            ids[root] = next;
            next += 1;
        }
        *slot = ids[root];
    }
    out
}

/// Size of the largest connected component — the paper's `NQ` metric when
/// applied to the remaining-set of a cut.
///
/// Isolated vertices count as components of size 1, matching the paper's
/// definition (`NQ` of a fully suppressed layer is 1, not 0).
pub fn largest_component_size(n: usize, edges: &[(usize, usize)]) -> usize {
    if n == 0 {
        return 0;
    }
    let comp = components(n, edges);
    let count = comp.iter().max().map(|&m| m + 1).unwrap_or(0);
    let mut sizes = vec![0usize; count];
    for &c in &comp {
        sizes[c] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_edges_gives_singletons() {
        assert_eq!(largest_component_size(4, &[]), 1);
        let comp = components(3, &[]);
        assert_eq!(comp, vec![0, 1, 2]);
    }

    #[test]
    fn chain_is_one_component() {
        let edges = [(0, 1), (1, 2), (2, 3)];
        assert_eq!(largest_component_size(4, &edges), 4);
    }

    #[test]
    fn two_components_report_larger() {
        let edges = [(0, 1), (2, 3), (3, 4)];
        assert_eq!(largest_component_size(5, &edges), 3);
    }

    #[test]
    fn empty_graph() {
        assert_eq!(largest_component_size(0, &[]), 0);
    }
}
