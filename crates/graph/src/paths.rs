//! Shortest paths and Yen's top-k shortest simple paths on multigraphs.
//!
//! All edges have unit length (a dual-graph path of length ℓ leaves exactly
//! ℓ couplings unsuppressed), so breadth-first search is the shortest-path
//! subroutine. Paths are recorded as **edge-id sequences**: on a multigraph,
//! two parallel edges form genuinely different paths — and genuinely
//! different odd-vertex pairings.
//!
//! The query functions come in two flavors: plain ([`bfs_distances`],
//! [`shortest_path`]) which allocate their working state per call, and
//! `_with` variants ([`bfs_distances_with`], [`shortest_path_with`]) which
//! reuse a caller-held [`BfsScratch`]. Per-gate routing issues one BFS per
//! two-qubit gate, so on 1000-qubit devices the scratch variants are the
//! difference between zero and millions of transient allocations.

use std::collections::VecDeque;

use crate::{EdgeId, MultiGraph};

/// A simple path through a [`MultiGraph`], stored as the traversed edge ids
/// plus the visited vertices (`vertices.len() == edges.len() + 1`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Path {
    /// Edge ids in traversal order.
    pub edges: Vec<EdgeId>,
    /// Vertices in traversal order, starting at the source.
    pub vertices: Vec<usize>,
}

impl Path {
    /// Number of edges (the path's length under unit weights).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` for a zero-length path (source == target).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Reusable working state for BFS queries.
///
/// Buffers grow to the largest graph queried and are then reused; visited
/// marks are epoch-stamped so repeated queries do not re-clear them.
///
/// # Example
///
/// ```
/// use zz_graph::{BfsScratch, MultiGraph, shortest_path_with};
///
/// let g = MultiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
/// let mut scratch = BfsScratch::new();
/// for target in 1..4 {
///     let p = shortest_path_with(&g, 0, target, &mut scratch).expect("connected");
///     assert_eq!(p.len(), target);
/// }
/// ```
#[derive(Clone, Debug, Default)]
pub struct BfsScratch {
    seen: Vec<u32>,
    epoch: u32,
    prev: Vec<(u32, u32)>,
    queue: VecDeque<u32>,
    path: Path,
    dist: Vec<usize>,
}

impl BfsScratch {
    /// Creates an empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        BfsScratch {
            seen: Vec::new(),
            epoch: 0,
            prev: Vec::new(),
            queue: VecDeque::new(),
            path: Path {
                edges: Vec::new(),
                vertices: Vec::new(),
            },
            dist: Vec::new(),
        }
    }

    /// Sizes the buffers for an `n`-vertex graph and opens a new epoch.
    fn begin(&mut self, n: usize) {
        if self.seen.len() < n {
            self.seen.resize(n, 0);
            self.prev.resize(n, (0, 0));
        }
        if self.epoch == u32::MAX {
            self.seen.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.queue.clear();
    }

    #[inline]
    fn mark(&mut self, v: usize) {
        self.seen[v] = self.epoch;
    }

    #[inline]
    fn visited(&self, v: usize) -> bool {
        self.seen[v] == self.epoch
    }
}

/// BFS distances from `source` to every vertex (`usize::MAX` if unreachable).
///
/// Self-loops never shorten a path and are skipped.
pub fn bfs_distances(g: &MultiGraph, source: usize) -> Vec<usize> {
    let mut scratch = BfsScratch::new();
    bfs_distances_with(g, source, &mut scratch).to_vec()
}

/// Allocation-free variant of [`bfs_distances`] reusing `scratch`.
///
/// The returned slice has one entry per vertex and is valid until the next
/// query through the same scratch.
pub fn bfs_distances_with<'s>(
    g: &MultiGraph,
    source: usize,
    scratch: &'s mut BfsScratch,
) -> &'s [usize] {
    let n = g.vertex_count();
    scratch.begin(n);
    scratch.dist.clear();
    scratch.dist.resize(n, usize::MAX);
    scratch.dist[source] = 0;
    scratch.mark(source);
    scratch.queue.push_back(source as u32);
    while let Some(u) = scratch.queue.pop_front() {
        let u = u as usize;
        let du = scratch.dist[u];
        for &(v, _) in g.incidences(u) {
            let v = v as usize;
            if v != u && !scratch.visited(v) {
                scratch.mark(v);
                scratch.dist[v] = du + 1;
                scratch.queue.push_back(v as u32);
            }
        }
    }
    &scratch.dist[..n]
}

/// Shortest path from `source` to `target` by BFS, avoiding `banned_edges`
/// and `banned_vertices` (either may be `None` for "nothing banned").
/// Fills `scratch.path` and returns `true` if a path exists.
fn bfs_path(
    g: &MultiGraph,
    source: usize,
    target: usize,
    banned_edges: Option<&[bool]>,
    banned_vertices: Option<&[bool]>,
    scratch: &mut BfsScratch,
) -> bool {
    let vertex_banned = |v: usize| banned_vertices.is_some_and(|b| b[v]);
    let edge_banned = |e: usize| banned_edges.is_some_and(|b| b.get(e).copied().unwrap_or(false));
    if vertex_banned(source) || vertex_banned(target) {
        return false;
    }
    scratch.path.edges.clear();
    scratch.path.vertices.clear();
    if source == target {
        scratch.path.vertices.push(source);
        return true;
    }
    scratch.begin(g.vertex_count());
    scratch.mark(source);
    scratch.queue.push_back(source as u32);
    while let Some(u) = scratch.queue.pop_front() {
        let u = u as usize;
        for &(v, e) in g.incidences(u) {
            let v = v as usize;
            if v == u || scratch.visited(v) || vertex_banned(v) || edge_banned(e as usize) {
                continue;
            }
            scratch.mark(v);
            scratch.prev[v] = (u as u32, e);
            if v == target {
                // Reconstruct.
                let path = &mut scratch.path;
                path.vertices.push(target);
                let mut cur = target;
                while cur != source {
                    let (p, pe) = scratch.prev[cur];
                    path.edges.push(pe as usize);
                    path.vertices.push(p as usize);
                    cur = p as usize;
                }
                path.edges.reverse();
                path.vertices.reverse();
                return true;
            }
            scratch.queue.push_back(v as u32);
        }
    }
    false
}

/// Shortest simple path from `source` to `target` (unit weights), or `None`
/// if disconnected.
pub fn shortest_path(g: &MultiGraph, source: usize, target: usize) -> Option<Path> {
    let mut scratch = BfsScratch::new();
    shortest_path_with(g, source, target, &mut scratch).cloned()
}

/// Allocation-free variant of [`shortest_path`] reusing `scratch`.
///
/// The returned path borrows the scratch and is valid until the next query
/// through it.
pub fn shortest_path_with<'s>(
    g: &MultiGraph,
    source: usize,
    target: usize,
    scratch: &'s mut BfsScratch,
) -> Option<&'s Path> {
    if bfs_path(g, source, target, None, None, scratch) {
        Some(&scratch.path)
    } else {
        None
    }
}

/// Yen's algorithm: the top-`k` shortest **simple** paths from `source` to
/// `target`, in non-decreasing length order.
///
/// Parallel edges yield distinct paths (they correspond to different primal
/// couplings), which is why candidate deduplication is on edge sequences.
///
/// Returns fewer than `k` paths when the graph does not contain `k` distinct
/// simple paths.
///
/// # Example
///
/// ```
/// use zz_graph::{MultiGraph, yen};
///
/// // A square: two distinct 2-edge paths between opposite corners.
/// let mut g = MultiGraph::new(4);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// g.add_edge(2, 3);
/// g.add_edge(3, 0);
/// let paths = yen(&g, 0, 2, 3);
/// assert_eq!(paths.len(), 2);
/// assert_eq!(paths[0].len(), 2);
/// assert_eq!(paths[1].len(), 2);
/// ```
pub fn yen(g: &MultiGraph, source: usize, target: usize, k: usize) -> Vec<Path> {
    let mut scratch = BfsScratch::new();
    let mut found: Vec<Path> = Vec::new();
    if !bfs_path(g, source, target, None, None, &mut scratch) {
        return found;
    }
    found.push(scratch.path.clone());

    // Candidate pool (kept sorted by length on extraction).
    let mut candidates: Vec<Path> = Vec::new();
    let mut banned_edges = vec![false; g.edge_count()];
    let mut banned_vertices = vec![false; g.vertex_count()];

    while found.len() < k {
        let last = found.last().expect("found is non-empty").clone();
        // Spur from every prefix of the most recent path.
        for i in 0..last.vertices.len() - 1 {
            let spur_node = last.vertices[i];
            let root_edges = &last.edges[..i];

            banned_edges.iter_mut().for_each(|b| *b = false);
            banned_vertices.iter_mut().for_each(|b| *b = false);
            // Ban the next edge of every found/candidate path sharing this root.
            for p in found.iter().chain(candidates.iter()) {
                if p.edges.len() > i && p.edges[..i] == *root_edges {
                    banned_edges[p.edges[i]] = true;
                }
            }
            // Ban root vertices (all but the spur node) to keep paths simple.
            for &v in &last.vertices[..i] {
                banned_vertices[v] = true;
            }

            if bfs_path(
                g,
                spur_node,
                target,
                Some(&banned_edges),
                Some(&banned_vertices),
                &mut scratch,
            ) {
                let spur = &scratch.path;
                let mut edges = root_edges.to_vec();
                edges.extend_from_slice(&spur.edges);
                let mut vertices = last.vertices[..i].to_vec();
                vertices.extend_from_slice(&spur.vertices);
                let total = Path { edges, vertices };
                if !candidates.contains(&total) && !found.contains(&total) {
                    candidates.push(total);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Extract the shortest candidate.
        let best = candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, p)| p.len())
            .map(|(i, _)| i)
            .expect("candidates is non-empty");
        found.push(candidates.swap_remove(best));
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_with_diagonal() -> MultiGraph {
        let mut g = MultiGraph::new(4);
        g.add_edge(0, 1); // 0
        g.add_edge(1, 2); // 1
        g.add_edge(2, 3); // 2
        g.add_edge(3, 0); // 3
        g.add_edge(0, 2); // 4 (diagonal)
        g
    }

    #[test]
    fn bfs_distances_on_path_graph() {
        let mut g = MultiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn shortest_path_prefers_diagonal() {
        let g = square_with_diagonal();
        let p = shortest_path(&g, 0, 2).expect("connected");
        assert_eq!(p.len(), 1);
        assert_eq!(p.edges, vec![4]);
    }

    #[test]
    fn scratch_is_reusable_across_queries() {
        let g = square_with_diagonal();
        let mut scratch = BfsScratch::new();
        let d = bfs_distances_with(&g, 0, &mut scratch).to_vec();
        assert_eq!(d, vec![0, 1, 1, 1]);
        let p = shortest_path_with(&g, 1, 3, &mut scratch).expect("connected");
        assert_eq!(p.len(), 2);
        // A second distance query through the same scratch matches a fresh one.
        let again = bfs_distances_with(&g, 2, &mut scratch).to_vec();
        assert_eq!(again, bfs_distances(&g, 2));
    }

    #[test]
    fn scratch_handles_growing_graphs() {
        let mut scratch = BfsScratch::new();
        let small = MultiGraph::from_edges(2, &[(0, 1)]);
        assert_eq!(bfs_distances_with(&small, 0, &mut scratch), &[0, 1]);
        let big = MultiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(bfs_distances_with(&big, 0, &mut scratch), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn yen_orders_by_length() {
        let g = square_with_diagonal();
        let paths = yen(&g, 0, 2, 5);
        assert_eq!(paths.len(), 3); // diagonal, and the two 2-edge sides
        assert_eq!(paths[0].len(), 1);
        assert_eq!(paths[1].len(), 2);
        assert_eq!(paths[2].len(), 2);
        // All distinct and simple.
        for p in &paths {
            let mut vs = p.vertices.clone();
            vs.sort_unstable();
            vs.dedup();
            assert_eq!(vs.len(), p.vertices.len(), "path must be simple");
        }
    }

    #[test]
    fn yen_distinguishes_parallel_edges() {
        let mut g = MultiGraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        let paths = yen(&g, 0, 1, 5);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].len(), 1);
        assert_eq!(paths[1].len(), 1);
        assert_ne!(paths[0].edges, paths[1].edges);
    }

    #[test]
    fn yen_ignores_self_loops() {
        let mut g = MultiGraph::new(2);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        let paths = yen(&g, 0, 1, 4);
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn disconnected_returns_empty() {
        let g = MultiGraph::new(3);
        assert!(yen(&g, 0, 2, 2).is_empty());
        assert!(shortest_path(&g, 0, 2).is_none());
    }

    #[test]
    fn yen_on_grid_finds_k_paths() {
        // 2x3 grid of vertices.
        let mut g = MultiGraph::new(6);
        // rows: 0 1 2 / 3 4 5
        for (u, v) in [(0, 1), (1, 2), (3, 4), (4, 5), (0, 3), (1, 4), (2, 5)] {
            g.add_edge(u, v);
        }
        let paths = yen(&g, 0, 5, 4);
        assert!(paths.len() >= 3);
        assert_eq!(paths[0].len(), 3);
        for w in paths.windows(2) {
            assert!(w[0].len() <= w[1].len());
        }
    }
}
