//! Shortest paths and Yen's top-k shortest simple paths on multigraphs.
//!
//! All edges have unit length (a dual-graph path of length ℓ leaves exactly
//! ℓ couplings unsuppressed), so breadth-first search is the shortest-path
//! subroutine. Paths are recorded as **edge-id sequences**: on a multigraph,
//! two parallel edges form genuinely different paths — and genuinely
//! different odd-vertex pairings.

use std::collections::VecDeque;

use crate::{EdgeId, MultiGraph};

/// A simple path through a [`MultiGraph`], stored as the traversed edge ids
/// plus the visited vertices (`vertices.len() == edges.len() + 1`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Path {
    /// Edge ids in traversal order.
    pub edges: Vec<EdgeId>,
    /// Vertices in traversal order, starting at the source.
    pub vertices: Vec<usize>,
}

impl Path {
    /// Number of edges (the path's length under unit weights).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` for a zero-length path (source == target).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// BFS distances from `source` to every vertex (`usize::MAX` if unreachable).
///
/// Self-loops never shorten a path and are skipped.
pub fn bfs_distances(g: &MultiGraph, source: usize) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.vertex_count()];
    dist[source] = 0;
    let mut queue = VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        for &(v, _) in g.neighbors(u) {
            if v != u && dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Shortest path from `source` to `target` by BFS, avoiding `banned_edges`
/// and `banned_vertices`. Returns `None` if no path exists.
fn bfs_path(
    g: &MultiGraph,
    source: usize,
    target: usize,
    banned_edges: &[bool],
    banned_vertices: &[bool],
) -> Option<Path> {
    if banned_vertices[source] || banned_vertices[target] {
        return None;
    }
    if source == target {
        return Some(Path {
            edges: vec![],
            vertices: vec![source],
        });
    }
    let n = g.vertex_count();
    let mut prev: Vec<Option<(usize, EdgeId)>> = vec![None; n];
    let mut seen = vec![false; n];
    seen[source] = true;
    let mut queue = VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        for &(v, e) in g.neighbors(u) {
            if v == u
                || seen[v]
                || banned_vertices[v]
                || banned_edges.get(e).copied().unwrap_or(false)
            {
                continue;
            }
            seen[v] = true;
            prev[v] = Some((u, e));
            if v == target {
                // Reconstruct.
                let mut edges = Vec::new();
                let mut vertices = vec![target];
                let mut cur = target;
                while let Some((p, pe)) = prev[cur] {
                    edges.push(pe);
                    vertices.push(p);
                    cur = p;
                }
                edges.reverse();
                vertices.reverse();
                return Some(Path { edges, vertices });
            }
            queue.push_back(v);
        }
    }
    None
}

/// Shortest simple path from `source` to `target` (unit weights), or `None`
/// if disconnected.
pub fn shortest_path(g: &MultiGraph, source: usize, target: usize) -> Option<Path> {
    bfs_path(
        g,
        source,
        target,
        &vec![false; g.edge_count()],
        &vec![false; g.vertex_count()],
    )
}

/// Yen's algorithm: the top-`k` shortest **simple** paths from `source` to
/// `target`, in non-decreasing length order.
///
/// Parallel edges yield distinct paths (they correspond to different primal
/// couplings), which is why candidate deduplication is on edge sequences.
///
/// Returns fewer than `k` paths when the graph does not contain `k` distinct
/// simple paths.
///
/// # Example
///
/// ```
/// use zz_graph::{MultiGraph, yen};
///
/// // A square: two distinct 2-edge paths between opposite corners.
/// let mut g = MultiGraph::new(4);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// g.add_edge(2, 3);
/// g.add_edge(3, 0);
/// let paths = yen(&g, 0, 2, 3);
/// assert_eq!(paths.len(), 2);
/// assert_eq!(paths[0].len(), 2);
/// assert_eq!(paths[1].len(), 2);
/// ```
pub fn yen(g: &MultiGraph, source: usize, target: usize, k: usize) -> Vec<Path> {
    let mut found: Vec<Path> = Vec::new();
    let Some(first) = shortest_path(g, source, target) else {
        return found;
    };
    found.push(first);

    // Candidate pool (kept sorted by length on extraction).
    let mut candidates: Vec<Path> = Vec::new();

    while found.len() < k {
        let last = found.last().expect("found is non-empty").clone();
        // Spur from every prefix of the most recent path.
        for i in 0..last.vertices.len() - 1 {
            let spur_node = last.vertices[i];
            let root_edges = &last.edges[..i];

            let mut banned_edges = vec![false; g.edge_count()];
            // Ban the next edge of every found/candidate path sharing this root.
            for p in found.iter().chain(candidates.iter()) {
                if p.edges.len() > i && p.edges[..i] == *root_edges {
                    banned_edges[p.edges[i]] = true;
                }
            }
            // Ban root vertices (all but the spur node) to keep paths simple.
            let mut banned_vertices = vec![false; g.vertex_count()];
            for &v in &last.vertices[..i] {
                banned_vertices[v] = true;
            }

            if let Some(spur) = bfs_path(g, spur_node, target, &banned_edges, &banned_vertices) {
                let mut edges = root_edges.to_vec();
                edges.extend_from_slice(&spur.edges);
                let mut vertices = last.vertices[..i].to_vec();
                vertices.extend_from_slice(&spur.vertices);
                let total = Path { edges, vertices };
                if !candidates.contains(&total) && !found.contains(&total) {
                    candidates.push(total);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Extract the shortest candidate.
        let best = candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, p)| p.len())
            .map(|(i, _)| i)
            .expect("candidates is non-empty");
        found.push(candidates.swap_remove(best));
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_with_diagonal() -> MultiGraph {
        let mut g = MultiGraph::new(4);
        g.add_edge(0, 1); // 0
        g.add_edge(1, 2); // 1
        g.add_edge(2, 3); // 2
        g.add_edge(3, 0); // 3
        g.add_edge(0, 2); // 4 (diagonal)
        g
    }

    #[test]
    fn bfs_distances_on_path_graph() {
        let mut g = MultiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn shortest_path_prefers_diagonal() {
        let g = square_with_diagonal();
        let p = shortest_path(&g, 0, 2).expect("connected");
        assert_eq!(p.len(), 1);
        assert_eq!(p.edges, vec![4]);
    }

    #[test]
    fn yen_orders_by_length() {
        let g = square_with_diagonal();
        let paths = yen(&g, 0, 2, 5);
        assert_eq!(paths.len(), 3); // diagonal, and the two 2-edge sides
        assert_eq!(paths[0].len(), 1);
        assert_eq!(paths[1].len(), 2);
        assert_eq!(paths[2].len(), 2);
        // All distinct and simple.
        for p in &paths {
            let mut vs = p.vertices.clone();
            vs.sort_unstable();
            vs.dedup();
            assert_eq!(vs.len(), p.vertices.len(), "path must be simple");
        }
    }

    #[test]
    fn yen_distinguishes_parallel_edges() {
        let mut g = MultiGraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        let paths = yen(&g, 0, 1, 5);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].len(), 1);
        assert_eq!(paths[1].len(), 1);
        assert_ne!(paths[0].edges, paths[1].edges);
    }

    #[test]
    fn yen_ignores_self_loops() {
        let mut g = MultiGraph::new(2);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        let paths = yen(&g, 0, 1, 4);
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn disconnected_returns_empty() {
        let g = MultiGraph::new(3);
        assert!(yen(&g, 0, 2, 2).is_empty());
        assert!(shortest_path(&g, 0, 2).is_none());
    }

    #[test]
    fn yen_on_grid_finds_k_paths() {
        // 2x3 grid of vertices.
        let mut g = MultiGraph::new(6);
        // rows: 0 1 2 / 3 4 5
        for (u, v) in [(0, 1), (1, 2), (3, 4), (4, 5), (0, 3), (1, 4), (2, 5)] {
            g.add_edge(u, v);
        }
        let paths = yen(&g, 0, 5, 4);
        assert!(paths.len() >= 3);
        assert_eq!(paths[0].len(), 3);
        for w in paths.windows(2) {
            assert!(w[0].len() <= w[1].len());
        }
    }
}
