//! An undirected multigraph with stable edge identities.

/// Identifier of an edge in a [`MultiGraph`] (its insertion index).
///
/// Edge ids are stable: removing edges is done by *masking* (see
/// [`MultiGraph::without_edges`]) rather than by re-indexing, so an id can
/// be carried across derived graphs — which is exactly what the suppression
/// algorithm needs when it maps dual edges back to primal couplings.
pub type EdgeId = usize;

/// Largest vertex or edge count a [`MultiGraph`] accepts.
///
/// Adjacency is stored with `u32` indices (see the struct docs); the public
/// API stays `usize`.
pub const MAX_INDEX: usize = u32::MAX as usize - 1;

/// An undirected multigraph: parallel edges and self-loops are allowed.
///
/// Internally the adjacency is a flat CSR (compressed sparse row) layout:
/// a `Vec<u32>` of per-vertex offsets into one packed `(neighbor, edge id)`
/// incidence array, with `u32` indices throughout. Compared to the earlier
/// nested `Vec<Vec<...>>` representation this halves memory per incidence
/// and removes one pointer chase per traversal step, which is what lets
/// BFS-heavy routing run on 1000-qubit device graphs. Per-vertex incidences
/// are ordered by ascending edge id (a self-loop contributes two
/// consecutive entries), exactly matching insertion order — algorithms that
/// tie-break on adjacency order behave identically to the old layout.
///
/// # Example
///
/// ```
/// use zz_graph::MultiGraph;
///
/// let mut g = MultiGraph::new(3);
/// let e0 = g.add_edge(0, 1);
/// let e1 = g.add_edge(0, 1); // parallel edge, distinct id
/// assert_ne!(e0, e1);
/// assert_eq!(g.degree(0), 2);
/// let loop_id = g.add_edge(2, 2);
/// assert_eq!(g.degree(2), 2); // a self-loop contributes 2 to the degree
/// # let _ = loop_id;
/// ```
#[derive(Clone, Debug, Default)]
pub struct MultiGraph {
    vertex_count: usize,
    endpoints: Vec<(u32, u32)>,
    /// CSR offsets: incidences of vertex `v` live at
    /// `packed[offsets[v] as usize..offsets[v + 1] as usize]`.
    offsets: Vec<u32>,
    /// Packed incidences as `(neighbor, edge id)`, grouped by vertex and
    /// ordered by ascending edge id within each group.
    packed: Vec<(u32, u32)>,
}

impl MultiGraph {
    /// Creates a graph with `vertex_count` vertices and no edges.
    ///
    /// # Panics
    ///
    /// Panics if `vertex_count` exceeds [`MAX_INDEX`].
    pub fn new(vertex_count: usize) -> Self {
        assert!(vertex_count <= MAX_INDEX, "vertex count exceeds u32 range");
        MultiGraph {
            vertex_count,
            endpoints: Vec::new(),
            offsets: vec![0; vertex_count + 1],
            packed: Vec::new(),
        }
    }

    /// Builds a graph from an edge list in one `O(V + E)` pass.
    ///
    /// Edge ids are assigned in list order, so the result is identical to
    /// calling [`MultiGraph::add_edge`] for each pair — but without the
    /// per-edge insertion cost. This is the constructor the compile path
    /// uses for device coupling graphs and duals.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range, or if `vertex_count` or the
    /// edge count exceeds [`MAX_INDEX`].
    pub fn from_edges(vertex_count: usize, edges: &[(usize, usize)]) -> Self {
        assert!(vertex_count <= MAX_INDEX, "vertex count exceeds u32 range");
        assert!(edges.len() <= MAX_INDEX, "edge count exceeds u32 range");
        let mut endpoints = Vec::with_capacity(edges.len());
        for &(u, v) in edges {
            assert!(
                u < vertex_count && v < vertex_count,
                "endpoint out of range"
            );
            endpoints.push((u as u32, v as u32));
        }
        let mut g = MultiGraph {
            vertex_count,
            endpoints,
            offsets: Vec::new(),
            packed: Vec::new(),
        };
        g.rebuild_adjacency(None);
        g
    }

    /// Rebuilds `offsets`/`packed` from `endpoints` with a counting sort,
    /// skipping edges masked out in `removed`. Incidences land in edge-id
    /// order per vertex (u-side and v-side of the same edge share an id, so
    /// their relative order across vertices is immaterial; a self-loop's two
    /// entries are consecutive), which reproduces insertion order.
    fn rebuild_adjacency(&mut self, removed: Option<&[bool]>) {
        let is_removed = |id: usize| removed.is_some_and(|m| m[id]);
        let mut counts = vec![0u32; self.vertex_count + 1];
        for (id, &(u, v)) in self.endpoints.iter().enumerate() {
            if is_removed(id) {
                continue;
            }
            counts[u as usize + 1] += 1;
            counts[v as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let total = counts[self.vertex_count] as usize;
        let mut packed = vec![(0u32, 0u32); total];
        let mut cursor: Vec<u32> = counts[..self.vertex_count].to_vec();
        for (id, &(u, v)) in self.endpoints.iter().enumerate() {
            if is_removed(id) {
                continue;
            }
            let e = id as u32;
            packed[cursor[u as usize] as usize] = (v, e);
            cursor[u as usize] += 1;
            // A self-loop appears twice in its endpoint's adjacency so the
            // degree convention deg += 2 holds.
            packed[cursor[v as usize] as usize] = (u, e);
            cursor[v as usize] += 1;
        }
        self.offsets = counts;
        self.packed = packed;
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// Number of edges (including masked-out ones; ids are never reused).
    pub fn edge_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Adds an undirected edge and returns its id. `u == v` creates a
    /// self-loop.
    ///
    /// Incremental insertion shifts the packed incidence array, so it costs
    /// `O(V + E)` per call; bulk construction should use
    /// [`MultiGraph::from_edges`] instead.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range, or if the edge count would
    /// exceed [`MAX_INDEX`].
    pub fn add_edge(&mut self, u: usize, v: usize) -> EdgeId {
        assert!(
            u < self.vertex_count && v < self.vertex_count,
            "endpoint out of range"
        );
        assert!(
            self.endpoints.len() < MAX_INDEX,
            "edge count exceeds u32 range"
        );
        let id = self.endpoints.len();
        self.endpoints.push((u as u32, v as u32));
        let e = id as u32;
        // Insert at the end of each endpoint's segment (the new id is the
        // largest, preserving per-vertex edge-id order). Inserting into the
        // higher-indexed segment first keeps the lower position valid.
        let (hi, lo) = if u <= v { (v, u) } else { (u, v) };
        let pos_hi = self.offsets[hi + 1] as usize;
        self.packed.insert(pos_hi, (lo as u32, e));
        if u != v {
            let pos_lo = self.offsets[lo + 1] as usize;
            self.packed.insert(pos_lo, (hi as u32, e));
            for off in &mut self.offsets[lo + 1..=hi] {
                *off += 1;
            }
            for off in &mut self.offsets[hi + 1..] {
                *off += 2;
            }
        } else {
            // The self-loop's second entry sits right next to the first.
            self.packed.insert(pos_hi, (u as u32, e));
            for off in &mut self.offsets[u + 1..] {
                *off += 2;
            }
        }
        id
    }

    /// The two endpoints of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not a valid edge id.
    pub fn endpoints(&self, e: EdgeId) -> (usize, usize) {
        let (u, v) = self.endpoints[e];
        (u as usize, v as usize)
    }

    /// Degree of vertex `v` (self-loops count twice).
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Neighbors of `v` as `(neighbor, edge id)` pairs; parallel edges and
    /// self-loops appear once per incidence, in ascending edge-id order.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (usize, EdgeId)> + '_ {
        self.incidences(v)
            .iter()
            .map(|&(n, e)| (n as usize, e as usize))
    }

    /// Raw CSR incidence slice of `v` — the allocation-free view used by the
    /// hot BFS loops.
    #[inline]
    pub(crate) fn incidences(&self, v: usize) -> &[(u32, u32)] {
        &self.packed[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Vertices with odd degree.
    pub fn odd_vertices(&self) -> Vec<usize> {
        (0..self.vertex_count)
            .filter(|&v| self.degree(v) % 2 == 1)
            .collect()
    }

    /// All edge ids currently in the graph.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        0..self.endpoints.len()
    }

    /// A copy of this graph with the given edges removed (ids preserved for
    /// the remaining edges).
    pub fn without_edges(&self, removed: &[EdgeId]) -> MultiGraph {
        let mut mask = vec![false; self.endpoints.len()];
        for &e in removed {
            mask[e] = true;
        }
        // Endpoint records are kept so edge ids remain valid; only the
        // adjacency skips masked edges.
        let mut g = MultiGraph {
            vertex_count: self.vertex_count,
            endpoints: self.endpoints.clone(),
            offsets: Vec::new(),
            packed: Vec::new(),
        };
        g.rebuild_adjacency(Some(&mask));
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_count_incidences() {
        let mut g = MultiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(2), 1);
        assert_eq!(g.odd_vertices(), vec![1, 2]);
    }

    #[test]
    fn self_loop_keeps_degree_even() {
        let mut g = MultiGraph::new(2);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.odd_vertices(), vec![0, 1]);
    }

    #[test]
    fn without_edges_preserves_ids() {
        let mut g = MultiGraph::new(3);
        let e0 = g.add_edge(0, 1);
        let e1 = g.add_edge(1, 2);
        let g2 = g.without_edges(&[e0]);
        assert_eq!(g2.degree(0), 0);
        assert_eq!(g2.degree(2), 1);
        assert_eq!(g2.endpoints(e1), (1, 2));
        // Original untouched.
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn odd_vertex_count_is_even() {
        let mut g = MultiGraph::new(6);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)] {
            g.add_edge(u, v);
        }
        assert_eq!(g.odd_vertices().len() % 2, 0);
    }

    #[test]
    fn from_edges_matches_incremental_insertion() {
        let edges = [(0, 1), (1, 2), (2, 2), (0, 1), (3, 0)];
        let bulk = MultiGraph::from_edges(4, &edges);
        let mut inc = MultiGraph::new(4);
        for &(u, v) in &edges {
            inc.add_edge(u, v);
        }
        assert_eq!(bulk.edge_count(), inc.edge_count());
        for v in 0..4 {
            let a: Vec<_> = bulk.neighbors(v).collect();
            let b: Vec<_> = inc.neighbors(v).collect();
            assert_eq!(a, b, "vertex {v}");
        }
    }

    #[test]
    fn neighbors_follow_insertion_order() {
        let mut g = MultiGraph::new(3);
        g.add_edge(1, 0);
        g.add_edge(1, 2);
        g.add_edge(0, 1);
        let order: Vec<_> = g.neighbors(1).collect();
        assert_eq!(order, vec![(0, 0), (2, 1), (0, 2)]);
    }
}
