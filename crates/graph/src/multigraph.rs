//! An undirected multigraph with stable edge identities.

/// Identifier of an edge in a [`MultiGraph`] (its insertion index).
///
/// Edge ids are stable: removing edges is done by *masking* (see
/// [`MultiGraph::without_edges`]) rather than by re-indexing, so an id can
/// be carried across derived graphs — which is exactly what the suppression
/// algorithm needs when it maps dual edges back to primal couplings.
pub type EdgeId = usize;

/// An undirected multigraph: parallel edges and self-loops are allowed.
///
/// # Example
///
/// ```
/// use zz_graph::MultiGraph;
///
/// let mut g = MultiGraph::new(3);
/// let e0 = g.add_edge(0, 1);
/// let e1 = g.add_edge(0, 1); // parallel edge, distinct id
/// assert_ne!(e0, e1);
/// assert_eq!(g.degree(0), 2);
/// let loop_id = g.add_edge(2, 2);
/// assert_eq!(g.degree(2), 2); // a self-loop contributes 2 to the degree
/// # let _ = loop_id;
/// ```
#[derive(Clone, Debug, Default)]
pub struct MultiGraph {
    vertex_count: usize,
    endpoints: Vec<(usize, usize)>,
    /// adjacency: per vertex, list of (neighbor, edge id).
    adj: Vec<Vec<(usize, EdgeId)>>,
}

impl MultiGraph {
    /// Creates a graph with `vertex_count` vertices and no edges.
    pub fn new(vertex_count: usize) -> Self {
        MultiGraph {
            vertex_count,
            endpoints: Vec::new(),
            adj: vec![Vec::new(); vertex_count],
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// Number of edges (including masked-out ones; ids are never reused).
    pub fn edge_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Adds an undirected edge and returns its id. `u == v` creates a
    /// self-loop.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) -> EdgeId {
        assert!(
            u < self.vertex_count && v < self.vertex_count,
            "endpoint out of range"
        );
        let id = self.endpoints.len();
        self.endpoints.push((u, v));
        self.adj[u].push((v, id));
        if u != v {
            self.adj[v].push((u, id));
        } else {
            // A self-loop appears twice in its endpoint's adjacency so the
            // degree convention deg += 2 holds.
            self.adj[u].push((v, id));
        }
        id
    }

    /// The two endpoints of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not a valid edge id.
    pub fn endpoints(&self, e: EdgeId) -> (usize, usize) {
        self.endpoints[e]
    }

    /// Degree of vertex `v` (self-loops count twice).
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Neighbors of `v` as `(neighbor, edge id)` pairs; parallel edges and
    /// self-loops appear once per incidence.
    pub fn neighbors(&self, v: usize) -> &[(usize, EdgeId)] {
        &self.adj[v]
    }

    /// Vertices with odd degree.
    pub fn odd_vertices(&self) -> Vec<usize> {
        (0..self.vertex_count)
            .filter(|&v| self.degree(v) % 2 == 1)
            .collect()
    }

    /// All edge ids currently in the graph.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        0..self.endpoints.len()
    }

    /// A copy of this graph with the given edges removed (ids preserved for
    /// the remaining edges).
    pub fn without_edges(&self, removed: &[EdgeId]) -> MultiGraph {
        let mut g = MultiGraph {
            vertex_count: self.vertex_count,
            endpoints: self.endpoints.clone(),
            adj: vec![Vec::new(); self.vertex_count],
        };
        let mut mask = vec![false; self.endpoints.len()];
        for &e in removed {
            mask[e] = true;
        }
        // Rebuild adjacency, skipping masked edges. Endpoint records are kept
        // so edge ids remain valid.
        for (id, &(u, v)) in self.endpoints.iter().enumerate() {
            if mask[id] {
                continue;
            }
            g.adj[u].push((v, id));
            if u != v {
                g.adj[v].push((u, id));
            } else {
                g.adj[u].push((v, id));
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_count_incidences() {
        let mut g = MultiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(2), 1);
        assert_eq!(g.odd_vertices(), vec![1, 2]);
    }

    #[test]
    fn self_loop_keeps_degree_even() {
        let mut g = MultiGraph::new(2);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.odd_vertices(), vec![0, 1]);
    }

    #[test]
    fn without_edges_preserves_ids() {
        let mut g = MultiGraph::new(3);
        let e0 = g.add_edge(0, 1);
        let e1 = g.add_edge(1, 2);
        let g2 = g.without_edges(&[e0]);
        assert_eq!(g2.degree(0), 0);
        assert_eq!(g2.degree(2), 1);
        assert_eq!(g2.endpoints(e1), (1, 2));
        // Original untouched.
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn odd_vertex_count_is_even() {
        let mut g = MultiGraph::new(6);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)] {
            g.add_edge(u, v);
        }
        assert_eq!(g.odd_vertices().len() % 2, 0);
    }
}
