//! Constrained 2-coloring: cut induction from a contracted edge set.
//!
//! After Algorithm 1 selects an odd-vertex pairing, the primal edges of the
//! pairing are *contracted* (endpoints must take the same color) and every
//! remaining edge must *cross* the cut (endpoints must take different
//! colors). That is exactly a 2-coloring problem with same/different
//! constraints, solved here by BFS. Inconsistent systems — which arise when
//! Path Relaxing proposes overlapping paths that do not form a valid
//! pairing — are reported as `None` rather than panicking, and the caller
//! simply discards the candidate.

use std::collections::VecDeque;

/// A single coloring constraint between two vertices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ColorConstraint {
    /// First vertex.
    pub u: usize,
    /// Second vertex.
    pub v: usize,
    /// `true` → same color (contracted edge); `false` → different colors
    /// (cut edge).
    pub same: bool,
}

impl ColorConstraint {
    /// Constraint forcing `u` and `v` to share a color.
    pub fn same(u: usize, v: usize) -> Self {
        ColorConstraint { u, v, same: true }
    }

    /// Constraint forcing `u` and `v` to differ in color.
    pub fn differ(u: usize, v: usize) -> Self {
        ColorConstraint { u, v, same: false }
    }
}

/// Solves a same/different 2-coloring problem on `n` vertices.
///
/// Returns a boolean color per vertex, or `None` if the constraints are
/// inconsistent (an odd cycle of `differ` constraints). Unconstrained
/// components are colored `false`.
///
/// # Example
///
/// ```
/// use zz_graph::{two_color, ColorConstraint};
///
/// let colors = two_color(3, &[
///     ColorConstraint::differ(0, 1),
///     ColorConstraint::same(1, 2),
/// ]).expect("consistent");
/// assert_ne!(colors[0], colors[1]);
/// assert_eq!(colors[1], colors[2]);
/// ```
pub fn two_color(n: usize, constraints: &[ColorConstraint]) -> Option<Vec<bool>> {
    let mut adj: Vec<Vec<(usize, bool)>> = vec![Vec::new(); n];
    for c in constraints {
        // A self-loop `differ` constraint is unsatisfiable; `same` is trivial.
        if c.u == c.v {
            if !c.same {
                return None;
            }
            continue;
        }
        adj[c.u].push((c.v, c.same));
        adj[c.v].push((c.u, c.same));
    }

    let mut color: Vec<Option<bool>> = vec![None; n];
    for start in 0..n {
        if color[start].is_some() {
            continue;
        }
        color[start] = Some(false);
        let mut queue = VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            let cu = color[u].expect("queued vertices are colored");
            for &(v, same) in &adj[u] {
                let want = if same { cu } else { !cu };
                match color[v] {
                    None => {
                        color[v] = Some(want);
                        queue.push_back(v);
                    }
                    Some(cv) if cv != want => return None,
                    Some(_) => {}
                }
            }
        }
    }
    Some(
        color
            .into_iter()
            .map(|c| c.expect("all vertices colored"))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bipartite_cycle_is_colorable() {
        let cs: Vec<_> = (0..4)
            .map(|i| ColorConstraint::differ(i, (i + 1) % 4))
            .collect();
        let colors = two_color(4, &cs).expect("even cycle is 2-colorable");
        for c in &cs {
            assert_ne!(colors[c.u], colors[c.v]);
        }
    }

    #[test]
    fn odd_cycle_of_differs_is_inconsistent() {
        let cs: Vec<_> = (0..3)
            .map(|i| ColorConstraint::differ(i, (i + 1) % 3))
            .collect();
        assert!(two_color(3, &cs).is_none());
    }

    #[test]
    fn same_constraints_merge_groups() {
        let colors = two_color(
            4,
            &[
                ColorConstraint::same(0, 1),
                ColorConstraint::same(2, 3),
                ColorConstraint::differ(1, 2),
            ],
        )
        .expect("consistent");
        assert_eq!(colors[0], colors[1]);
        assert_eq!(colors[2], colors[3]);
        assert_ne!(colors[0], colors[2]);
    }

    #[test]
    fn self_loop_differ_is_inconsistent() {
        assert!(two_color(1, &[ColorConstraint::differ(0, 0)]).is_none());
        assert!(two_color(1, &[ColorConstraint::same(0, 0)]).is_some());
    }

    #[test]
    fn unconstrained_vertices_default_false() {
        let colors = two_color(3, &[]).expect("no constraints");
        assert_eq!(colors, vec![false, false, false]);
    }

    #[test]
    fn mixed_cycle_parity_rules() {
        // same + differ + differ around a triangle: consistent (even # of differs).
        let colors = two_color(
            3,
            &[
                ColorConstraint::same(0, 1),
                ColorConstraint::differ(1, 2),
                ColorConstraint::differ(2, 0),
            ],
        );
        assert!(colors.is_some());
        // same + same + differ: inconsistent (odd # of differs).
        let bad = two_color(
            3,
            &[
                ColorConstraint::same(0, 1),
                ColorConstraint::same(1, 2),
                ColorConstraint::differ(2, 0),
            ],
        );
        assert!(bad.is_none());
    }
}
