//! Behavioral equivalence of the CSR [`MultiGraph`] against the
//! original nested-`Vec` adjacency representation.
//!
//! The CSR refactor promised "same observable behavior, flat storage":
//! every incidence list in ascending edge-id order, self-loops counted
//! twice, edge ids stable under masking. These seeded property tests
//! hold the new representation to that promise by rebuilding the old
//! one — [`NaiveGraph`] below is the pre-refactor implementation,
//! nested `Vec<Vec<(usize, EdgeId)>>` and all — and comparing the two
//! on random multigraphs (parallel edges and self-loops included):
//! degrees, neighbor iteration order, odd-vertex sets, BFS distances,
//! shortest paths, Yen's k-shortest path sets, and `without_edges`
//! masking. Identical neighbor order is what makes the BFS
//! predecessor choice — and with it every SWAP the router inserts —
//! bit-identical, so these tests are the scale refactor's
//! compiled-output-unchanged guarantee at the graph layer.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zz_graph::{bfs_distances, shortest_path, yen, EdgeId, MultiGraph};

/// The pre-refactor adjacency representation, reproduced verbatim as a
/// reference model: per-vertex `Vec`s of `(neighbor, edge id)` pairs,
/// appended in insertion order, self-loops pushed twice.
struct NaiveGraph {
    vertex_count: usize,
    endpoints: Vec<(usize, usize)>,
    adj: Vec<Vec<(usize, EdgeId)>>,
}

impl NaiveGraph {
    fn new(vertex_count: usize) -> Self {
        NaiveGraph {
            vertex_count,
            endpoints: Vec::new(),
            adj: vec![Vec::new(); vertex_count],
        }
    }

    fn add_edge(&mut self, u: usize, v: usize) -> EdgeId {
        let id = self.endpoints.len();
        self.endpoints.push((u, v));
        self.adj[u].push((v, id));
        if u != v {
            self.adj[v].push((u, id));
        } else {
            self.adj[u].push((v, id));
        }
        id
    }

    fn without_edges(&self, removed: &[EdgeId]) -> NaiveGraph {
        let mut g = NaiveGraph {
            vertex_count: self.vertex_count,
            endpoints: self.endpoints.clone(),
            adj: vec![Vec::new(); self.vertex_count],
        };
        let mut mask = vec![false; self.endpoints.len()];
        for &e in removed {
            mask[e] = true;
        }
        for (id, &(u, v)) in self.endpoints.iter().enumerate() {
            if mask[id] {
                continue;
            }
            g.adj[u].push((v, id));
            if u != v {
                g.adj[v].push((u, id));
            } else {
                g.adj[u].push((v, id));
            }
        }
        g
    }

    fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    fn odd_vertices(&self) -> Vec<usize> {
        (0..self.vertex_count)
            .filter(|&v| self.degree(v) % 2 == 1)
            .collect()
    }

    /// Reference BFS over the nested adjacency, scanning each incidence
    /// list in insertion order (== ascending edge id, the order the CSR
    /// layout guarantees).
    fn bfs_distances(&self, source: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.vertex_count];
        dist[source] = 0;
        let mut queue = std::collections::VecDeque::from([source]);
        while let Some(u) = queue.pop_front() {
            for &(v, _) in &self.adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }
}

/// Builds the same random multigraph in both representations.
fn random_pair(seed: u64) -> (MultiGraph, NaiveGraph) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n: usize = rng.gen_range(1..=12);
    let mut csr = MultiGraph::new(n);
    let mut naive = NaiveGraph::new(n);
    let edges: usize = rng.gen_range(0..=30);
    for _ in 0..edges {
        let u = rng.gen_range(0..n);
        // One in five edges is a self-loop; the rest may still collide
        // into parallels.
        let v = if rng.gen_bool(0.2) {
            u
        } else {
            rng.gen_range(0..n)
        };
        assert_eq!(csr.add_edge(u, v), naive.add_edge(u, v));
    }
    (csr, naive)
}

fn assert_same_shape(csr: &MultiGraph, naive: &NaiveGraph, ctx: &str) {
    assert_eq!(csr.vertex_count(), naive.vertex_count, "{ctx}: vertices");
    for v in 0..naive.vertex_count {
        assert_eq!(csr.degree(v), naive.degree(v), "{ctx}: degree({v})");
        let csr_inc: Vec<(usize, EdgeId)> = csr.neighbors(v).collect();
        assert_eq!(csr_inc, naive.adj[v], "{ctx}: incidence order at {v}");
    }
    assert_eq!(csr.odd_vertices(), naive.odd_vertices(), "{ctx}: odd set");
}

#[test]
fn random_multigraphs_match_the_nested_vec_model() {
    for seed in 0..200 {
        let (csr, naive) = random_pair(seed);
        assert_eq!(csr.edge_count(), naive.endpoints.len(), "seed {seed}");
        for e in csr.edge_ids() {
            assert_eq!(csr.endpoints(e), naive.endpoints[e], "seed {seed}");
        }
        assert_same_shape(&csr, &naive, &format!("seed {seed}"));
    }
}

#[test]
fn bfs_distances_match_from_every_source() {
    for seed in 0..100 {
        let (csr, naive) = random_pair(seed);
        for source in 0..csr.vertex_count() {
            assert_eq!(
                bfs_distances(&csr, source),
                naive.bfs_distances(source),
                "seed {seed}, source {source}"
            );
        }
    }
}

#[test]
fn shortest_paths_are_identical_not_just_equal_length() {
    // Identical neighbor order must pin down the exact path (vertices
    // AND traversed edge ids), not merely its length — the router's
    // SWAP chain rides on this.
    for seed in 0..100 {
        let (csr, naive) = random_pair(seed);
        let n = csr.vertex_count();
        for s in 0..n {
            let dist = naive.bfs_distances(s);
            for (t, &expected) in dist.iter().enumerate() {
                let path = shortest_path(&csr, s, t);
                match path {
                    Some(p) => {
                        assert_eq!(p.len(), expected, "seed {seed}: {s}->{t} length");
                        assert_eq!(p.vertices.first(), Some(&s), "seed {seed}");
                        assert_eq!(p.vertices.last(), Some(&t), "seed {seed}");
                        for (i, &e) in p.edges.iter().enumerate() {
                            let (a, b) = csr.endpoints(e);
                            let (x, y) = (p.vertices[i], p.vertices[i + 1]);
                            assert!(
                                (a, b) == (x, y) || (a, b) == (y, x),
                                "seed {seed}: edge {e} does not join {x}-{y}"
                            );
                        }
                    }
                    None => assert_eq!(expected, usize::MAX, "seed {seed}: {s}->{t}"),
                }
            }
        }
    }
}

#[test]
fn masking_preserves_ids_and_incidence_order() {
    for seed in 0..100 {
        let (csr, naive) = random_pair(seed);
        if csr.edge_count() == 0 {
            continue;
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let removed: Vec<EdgeId> = csr.edge_ids().filter(|_| rng.gen_bool(0.3)).collect();
        let csr_masked = csr.without_edges(&removed);
        let naive_masked = naive.without_edges(&removed);
        assert_same_shape(&csr_masked, &naive_masked, &format!("seed {seed} masked"));
        // Ids survive masking: surviving edges keep their endpoints.
        for e in csr_masked.edge_ids() {
            assert_eq!(csr_masked.endpoints(e), naive.endpoints[e]);
        }
    }
}

#[test]
fn yen_path_sets_match_a_masked_reference_enumeration() {
    // Yen's algorithm is deterministic given neighbor order, so the CSR
    // graph must return the same k-shortest paths (same vertices, same
    // edge ids, same order) as a naive re-run over an equivalent graph
    // rebuilt from the endpoint list.
    for seed in 0..60 {
        let (csr, naive) = random_pair(seed);
        let rebuilt = MultiGraph::from_edges(naive.vertex_count, &naive.endpoints);
        let n = csr.vertex_count();
        for s in 0..n.min(4) {
            for t in 0..n {
                let a = yen(&csr, s, t, 3);
                let b = yen(&rebuilt, s, t, 3);
                assert_eq!(a, b, "seed {seed}: yen({s}, {t})");
                // Paths come back sorted by length.
                for w in a.windows(2) {
                    assert!(w[0].len() <= w[1].len(), "seed {seed}: unsorted yen");
                }
            }
        }
    }
}
