//! [`DriftModel`]: deterministic, seedable calibration drift.
//!
//! Real devices' ZZ couplings wander between calibrations (two-level
//! fluctuators, junction aging, thermal cycling), which is what makes
//! fleet-level cache invalidation a real problem rather than a policy
//! choice. The model here is a bounded multiplicative random walk on the
//! mean coupling strength, computed *statelessly*: the drifted value at
//! any epoch is a pure function of `(seed, device name, epoch)`, so two
//! fleets with the same seed agree bit-for-bit whatever order devices
//! were registered or queried in — the property the determinism tests
//! pin.

use zz_persist::{fnv1a, fnv1a_mix};

/// A deterministic multiplicative random walk over calibration epochs.
///
/// At each epoch the mean coupling strength is multiplied by
/// `1 + step · u` with `u` uniform in `[-1, 1)`, drawn from a hash of
/// `(seed, device, epoch)` — no state, no call-order sensitivity.
///
/// # Example
///
/// ```
/// use zz_fleet::DriftModel;
///
/// let drift = DriftModel::new(7).with_step(0.1);
/// let base = 1.0e-3;
/// // Stateless: the same query always answers the same value…
/// assert_eq!(drift.lambda_at(base, "dev-a", 5), drift.lambda_at(base, "dev-a", 5));
/// // …devices walk independently…
/// assert_ne!(drift.lambda_at(base, "dev-a", 5), drift.lambda_at(base, "dev-b", 5));
/// // …and every step is bounded by the step size.
/// let drifted = drift.lambda_at(base, "dev-a", 1);
/// assert!((drifted / base - 1.0).abs() <= 0.1);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct DriftModel {
    seed: u64,
    step: f64,
}

impl DriftModel {
    /// A drift model with the default ±8% per-epoch step bound.
    pub fn new(seed: u64) -> Self {
        DriftModel { seed, step: 0.08 }
    }

    /// Replaces the per-epoch fractional step bound (`0 ≤ step < 1`;
    /// `0.1` = each epoch rescales the mean by a factor in `[0.9, 1.1)`).
    ///
    /// # Panics
    ///
    /// Panics when `step` is outside `[0, 1)` — a full-strength step
    /// could drive the coupling negative.
    pub fn with_step(mut self, step: f64) -> Self {
        assert!((0.0..1.0).contains(&step), "step must be in [0, 1)");
        self.step = step;
        self
    }

    /// The model's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-epoch fractional step bound.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// The drifted mean coupling strength of `device` at `epoch`, given
    /// its nominal (epoch-0) value. Pure function of the inputs;
    /// `epoch = 0` returns `base` exactly.
    pub fn lambda_at(&self, base: f64, device: &str, epoch: u64) -> f64 {
        let device_salt = fnv1a(device.as_bytes());
        let mut lambda = base;
        for k in 1..=epoch {
            let h = splitmix64(fnv1a_mix(fnv1a_mix(self.seed, device_salt), k));
            lambda *= 1.0 + self.step * unit(h);
        }
        lambda
    }
}

/// SplitMix64 finalizer: one cheap, well-mixed u64 from a hash that FNV
/// alone would leave with weak high bits.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Maps a hash to a uniform f64 in `[-1, 1)` using the top 53 bits.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_zero_is_the_nominal_value() {
        let drift = DriftModel::new(1);
        assert_eq!(drift.lambda_at(2.5, "dev", 0), 2.5);
    }

    #[test]
    fn walks_are_deterministic_and_seed_sensitive() {
        let a = DriftModel::new(1).with_step(0.05);
        let b = DriftModel::new(2).with_step(0.05);
        for epoch in 1..10 {
            assert_eq!(
                a.lambda_at(1.0, "dev", epoch).to_bits(),
                a.lambda_at(1.0, "dev", epoch).to_bits()
            );
            assert_ne!(
                a.lambda_at(1.0, "dev", epoch).to_bits(),
                b.lambda_at(1.0, "dev", epoch).to_bits(),
                "epoch {epoch}"
            );
        }
    }

    #[test]
    fn every_step_respects_the_bound() {
        let drift = DriftModel::new(42).with_step(0.08);
        for device in ["a", "b", "long-device-name"] {
            let mut previous = 1.0;
            for epoch in 1..50 {
                let lambda = drift.lambda_at(1.0, device, epoch);
                let ratio = lambda / previous;
                assert!(
                    (ratio - 1.0).abs() <= 0.08 + 1e-12,
                    "{device} epoch {epoch}: step ratio {ratio}"
                );
                assert!(lambda > 0.0);
                previous = lambda;
            }
        }
    }

    #[test]
    fn zero_step_never_drifts() {
        let drift = DriftModel::new(9).with_step(0.0);
        assert_eq!(drift.lambda_at(3.0, "dev", 100), 3.0);
    }

    #[test]
    fn the_walk_actually_moves() {
        let drift = DriftModel::new(0).with_step(0.08);
        assert_ne!(drift.lambda_at(1.0, "dev", 1), 1.0);
    }
}
