//! [`Fleet`]: N named backends behind one dispatch decision.
//!
//! Each backend is a full [`zz_service::Session`] built from a
//! [`DeviceProfile`] — its own topology, noise characterization,
//! dedicated [`CalibCache`] and (when the fleet has a store root) its
//! own artifact shard under `<root>/<device>/`. [`Fleet::submit`]
//! compiles a job on every backend that can hold it, scores each
//! candidate with a predicted fidelity, and dispatches to the best;
//! [`Fleet::advance_epoch`] drifts every device's ground-truth ZZ
//! characterization and re-characterizes (invalidating the stale
//! calibration artifacts) any device that drifted past the configured
//! threshold.
//!
//! # Determinism
//!
//! Every decision is a pure function of the fleet's configuration and
//! the job stream: drift is stateless in `(seed, device, epoch)`,
//! scoring runs on the caller thread through the bit-identical batched
//! engine, and ties break toward the earliest-registered device. Worker
//! thread counts affect throughput only — never a dispatch.

use std::path::PathBuf;
use std::sync::Arc;

use zz_circuit::Circuit;
use zz_core::calib::CalibCache;
use zz_core::evaluate::{fidelity_of, EvalConfig, MAX_EVAL_QUBITS};
use zz_obs::{Counter, Event, EventLog, Gauge, Registry};
use zz_persist::ArtifactStore;
use zz_service::{CompileOptions, CompileRequest, CompileResponse, EvalSpec, Session, Target};
use zz_topology::Topology;

use crate::drift::DriftModel;
use crate::profile::DeviceProfile;
use crate::report::{DeviceReport, FleetReport};

/// Why a fleet operation failed.
#[derive(Debug)]
pub enum FleetError {
    /// A device with this name is already registered.
    DuplicateDevice {
        /// The offending name.
        device: String,
    },
    /// No registered device goes by this name.
    UnknownDevice {
        /// The requested name.
        device: String,
    },
    /// No registered backend can hold the submitted circuit.
    NoEligibleBackend {
        /// Qubits the job needs.
        qubits: usize,
    },
    /// A backend's session failed (target construction or compile).
    Service {
        /// The backend the failure happened on.
        device: String,
        /// The underlying service error.
        source: zz_service::Error,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::DuplicateDevice { device } => {
                write!(f, "device '{device}' is already registered")
            }
            FleetError::UnknownDevice { device } => {
                write!(f, "no device named '{device}' is registered")
            }
            FleetError::NoEligibleBackend { qubits } => {
                write!(f, "no registered backend holds {qubits} qubits")
            }
            FleetError::Service { device, source } => {
                write!(f, "backend '{device}' failed: {source}")
            }
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Service { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Tuning knobs for a [`Fleet`].
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Seed for the drift walk (and everything else the fleet ever
    /// randomizes). Two fleets with equal seeds and job streams make
    /// bit-identical decisions.
    pub seed: u64,
    /// Per-epoch fractional drift step bound (see
    /// [`DriftModel::with_step`]).
    pub drift_step: f64,
    /// Fractional deviation of the ground-truth mean λ from the
    /// calibrated one beyond which an epoch invalidates the device's
    /// calibration and re-characterizes.
    pub invalidation_threshold: f64,
    /// Worker threads per backend session (throughput only; dispatch
    /// decisions are thread-count-invariant).
    pub threads_per_device: usize,
    /// Disorder seeds for simulation-based scoring of small devices.
    pub eval_seeds: Vec<u64>,
    /// Monte-Carlo trajectories for decoherence during scoring (used
    /// only above the exact density-matrix register size).
    pub trajectories: usize,
    /// Root directory for per-device artifact shards; `None` keeps every
    /// backend in-memory.
    pub store_root: Option<PathBuf>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 0x5eed,
            drift_step: 0.08,
            invalidation_threshold: 0.10,
            threads_per_device: 2,
            eval_seeds: vec![11, 23, 37],
            trajectories: 12,
            store_root: None,
        }
    }
}

/// How one candidate backend was scored during a dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScoreKind {
    /// Density-matrix / trajectory simulation at the calibrated noise
    /// (devices within [`MAX_EVAL_QUBITS`]).
    Simulated,
    /// The analytic plan-metrics proxy
    /// (`exp(-λ·residual_zz_weight) · exp(-duration/T2)`).
    PlanMetrics,
}

/// One candidate's predicted fidelity during a dispatch.
#[derive(Clone, Debug)]
pub struct CandidateScore {
    /// The backend's device name.
    pub device: String,
    /// Predicted fidelity in `[0, 1]` (comparable across backends).
    pub score: f64,
    /// Which predictor produced the score.
    pub kind: ScoreKind,
}

/// The recorded outcome of one [`Fleet::submit`].
#[derive(Debug)]
pub struct Dispatch {
    /// The job label.
    pub label: String,
    /// The winning backend's device name.
    pub device: String,
    /// The winner's predicted fidelity.
    pub score: f64,
    /// Every eligible candidate's score, in registration order.
    pub candidates: Vec<CandidateScore>,
    /// The winning backend's compile response.
    pub response: CompileResponse,
}

/// One device's recalibration during an epoch.
#[derive(Clone, Debug)]
pub struct Invalidation {
    /// The recalibrated device.
    pub device: String,
    /// The calibrated mean λ the device had before (rad/ns).
    pub previous_lambda: f64,
    /// The freshly characterized mean λ (rad/ns).
    pub new_lambda: f64,
    /// Fractional deviation that tripped the threshold.
    pub deviation: f64,
}

/// What one [`Fleet::advance_epoch`] did.
#[derive(Clone, Debug)]
pub struct EpochReport {
    /// The epoch the fleet is now at.
    pub epoch: u64,
    /// Devices whose calibration was invalidated and re-characterized,
    /// in registration order.
    pub invalidations: Vec<Invalidation>,
}

/// The fleet's standing metric handles (names under `fleet.*`).
#[derive(Debug)]
struct FleetMetrics {
    /// `fleet.dispatch` — jobs dispatched.
    dispatch: Arc<Counter>,
    /// `fleet.drift.invalidations` — calibrations invalidated by drift.
    invalidations: Arc<Counter>,
    /// `fleet.epoch` — the current epoch.
    epoch: Arc<Gauge>,
}

/// One registered backend: profile, live session, current calibration
/// and ground truth.
#[derive(Debug)]
struct Backend {
    profile: DeviceProfile,
    topology: Topology,
    session: Session,
    calib: Arc<CalibCache>,
    store: Option<Arc<ArtifactStore>>,
    /// The mean λ the device *actually* has right now (drifted).
    true_lambda: f64,
    /// The mean λ the current calibration characterized.
    calibrated_lambda: f64,
    /// The epoch the current calibration was taken at.
    calibrated_epoch: u64,
    jobs: usize,
    invalidations: usize,
    score_sum: f64,
    score_count: usize,
    last_score: f64,
    /// `fleet.device.<name>.jobs` — jobs dispatched here.
    jobs_metric: Arc<Counter>,
    /// `fleet.device.<name>.lambda_khz` — calibrated mean λ in kHz.
    lambda_metric: Arc<Gauge>,
}

impl Backend {
    fn small(&self) -> bool {
        self.topology.qubit_count() <= MAX_EVAL_QUBITS
    }
}

/// N named backends, one dispatch decision. See the [crate
/// docs](crate) for the model and the determinism contract.
#[derive(Debug)]
pub struct Fleet {
    config: FleetConfig,
    drift: DriftModel,
    epoch: u64,
    backends: Vec<Backend>,
    registry: Arc<Registry>,
    events: EventLog,
    metrics: FleetMetrics,
    jobs: usize,
}

impl Fleet {
    /// An empty fleet with the given configuration; register backends
    /// with [`add_device`](Self::add_device).
    pub fn new(config: FleetConfig) -> Self {
        let registry = Arc::new(Registry::new());
        let metrics = FleetMetrics {
            dispatch: registry.counter("fleet.dispatch"),
            invalidations: registry.counter("fleet.drift.invalidations"),
            epoch: registry.gauge("fleet.epoch"),
        };
        Fleet {
            drift: DriftModel::new(config.seed).with_step(config.drift_step),
            config,
            epoch: 0,
            backends: Vec::new(),
            registry,
            events: EventLog::from_env(),
            metrics,
            jobs: 0,
        }
    }

    /// A fleet over the three shipped profiles
    /// ([`DeviceProfile::standard_fleet`]).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Service`] when a backend's store shard or
    /// target cannot be built.
    pub fn standard(config: FleetConfig) -> Result<Self, FleetError> {
        let mut fleet = Fleet::new(config);
        for profile in DeviceProfile::standard_fleet() {
            fleet.add_device(profile)?;
        }
        Ok(fleet)
    }

    /// Registers a backend built from `profile`: a dedicated calibration
    /// cache at the profile's nominal λ, a per-device artifact shard
    /// when the fleet has a store root, and a session over them.
    ///
    /// # Errors
    ///
    /// [`FleetError::DuplicateDevice`] when the name is taken,
    /// [`FleetError::Service`] when the target cannot be built.
    pub fn add_device(&mut self, profile: DeviceProfile) -> Result<(), FleetError> {
        if self.backends.iter().any(|b| b.profile.name == profile.name) {
            return Err(FleetError::DuplicateDevice {
                device: profile.name.clone(),
            });
        }
        let store = self
            .config
            .store_root
            .as_ref()
            .map(|root| Arc::new(ArtifactStore::at(root).shard(&profile.name)));
        let true_lambda = profile.lambda_mean; // epoch 0: no drift yet
        let (session, calib) = build_session(
            &profile,
            true_lambda,
            0,
            store.clone(),
            self.config.threads_per_device,
        )?;
        let jobs_metric = self
            .registry
            .counter(&format!("fleet.device.{}.jobs", profile.name));
        let lambda_metric = self
            .registry
            .gauge(&format!("fleet.device.{}.lambda_khz", profile.name));
        lambda_metric.set(as_khz(true_lambda));
        let topology = profile.topology();
        self.backends.push(Backend {
            topology,
            session,
            calib,
            store,
            true_lambda,
            calibrated_lambda: true_lambda,
            calibrated_epoch: 0,
            jobs: 0,
            invalidations: 0,
            score_sum: 0.0,
            score_count: 0,
            last_score: f64::NAN,
            jobs_metric,
            lambda_metric,
            profile,
        });
        Ok(())
    }

    /// The registered device names, in registration order.
    pub fn devices(&self) -> Vec<&str> {
        self.backends
            .iter()
            .map(|b| b.profile.name.as_str())
            .collect()
    }

    /// The current epoch (0 until the first
    /// [`advance_epoch`](Self::advance_epoch)).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The fleet's metrics registry (`fleet.*` counters and per-device
    /// gauges) — hand it to `zz_net::Server::bind_with_stats` to surface
    /// fleet stats through a device server's Stats endpoint.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The ground-truth (drifted) mean λ of a device — what the hardware
    /// actually does right now, as opposed to what its calibration says.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::UnknownDevice`] for an unregistered name.
    pub fn true_lambda(&self, device: &str) -> Result<f64, FleetError> {
        Ok(self.backend(device)?.true_lambda)
    }

    /// The mean λ the device's current calibration characterized.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::UnknownDevice`] for an unregistered name.
    pub fn calibrated_lambda(&self, device: &str) -> Result<f64, FleetError> {
        Ok(self.backend(device)?.calibrated_lambda)
    }

    /// Compiles `circuit` on every backend that holds it, scores each
    /// candidate with its predicted fidelity — simulation at the
    /// calibrated noise for devices within [`MAX_EVAL_QUBITS`], the
    /// plan-metrics proxy above — and dispatches to the best (ties break
    /// toward the earliest-registered device).
    ///
    /// # Errors
    ///
    /// [`FleetError::NoEligibleBackend`] when no backend holds the
    /// circuit, [`FleetError::Service`] when a candidate compile fails.
    pub fn submit(
        &mut self,
        circuit: Circuit,
        options: CompileOptions,
    ) -> Result<Dispatch, FleetError> {
        let qubits = circuit.qubit_count();
        let circuit = Arc::new(circuit);
        self.jobs += 1;
        let label = format!("job-{}-{}", self.jobs, options.default_label());

        let mut candidates = Vec::new();
        let mut best: Option<(usize, f64)> = None;
        for (index, backend) in self.backends.iter_mut().enumerate() {
            if backend.topology.qubit_count() < qubits {
                continue;
            }
            let mut request = CompileRequest::shared(Arc::clone(&circuit))
                .with_options(options)
                .with_label(format!("{label}@{}", backend.profile.name));
            let kind = if backend.small() {
                request = request.with_eval(EvalSpec {
                    crosstalk_seeds: self.config.eval_seeds.clone(),
                    decoherence: Some((
                        backend.profile.decoherence(),
                        self.config.trajectories,
                        97,
                    )),
                });
                ScoreKind::Simulated
            } else {
                ScoreKind::PlanMetrics
            };
            let response =
                backend
                    .session
                    .compile(&request)
                    .map_err(|source| FleetError::Service {
                        device: backend.profile.name.clone(),
                        source,
                    })?;
            let score = match kind {
                ScoreKind::Simulated => response.fidelity.expect("eval was requested"),
                ScoreKind::PlanMetrics => {
                    plan_metrics_score(&response, backend.calibrated_lambda, backend.profile.t2_us)
                }
            };
            backend.score_sum += score;
            backend.score_count += 1;
            backend.last_score = score;
            candidates.push((
                index,
                CandidateScore {
                    device: backend.profile.name.clone(),
                    score,
                    kind,
                },
                response,
            ));
            if best.is_none_or(|(_, top)| score > top) {
                best = Some((index, score));
            }
        }
        let Some((winner, score)) = best else {
            return Err(FleetError::NoEligibleBackend { qubits });
        };

        let mut response = None;
        let mut scores = Vec::with_capacity(candidates.len());
        for (index, candidate, r) in candidates {
            if index == winner {
                response = Some(r);
            }
            scores.push(candidate);
        }
        let response = response.expect("the winner was a candidate");
        let backend = &mut self.backends[winner];
        backend.jobs += 1;
        backend.jobs_metric.inc();
        self.metrics.dispatch.inc();
        self.events.emit(
            &Event::new("fleet.dispatch")
                .field("label", label.as_str())
                .field("device", backend.profile.name.as_str())
                .field("score", score),
        );
        Ok(Dispatch {
            label,
            device: backend.profile.name.clone(),
            score,
            candidates: scores,
            response,
        })
    }

    /// Advances simulated time by one calibration epoch: every device's
    /// ground-truth λ takes one drift step, and any device whose
    /// calibration now deviates beyond the configured threshold is
    /// re-characterized — its calibration cache is replaced by a fresh
    /// one at the new λ with epoch-salted disk keys, and its session is
    /// rebuilt around it, so no compile after this call can reuse a
    /// stale calibration artifact. Other devices' shards are untouched.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Service`] when a recalibrated backend's
    /// target cannot be rebuilt.
    pub fn advance_epoch(&mut self) -> Result<EpochReport, FleetError> {
        self.epoch += 1;
        self.metrics.epoch.set(self.epoch as i64);
        let mut invalidations = Vec::new();
        for backend in &mut self.backends {
            backend.true_lambda = self.drift.lambda_at(
                backend.profile.lambda_mean,
                &backend.profile.name,
                self.epoch,
            );
            let deviation =
                (backend.true_lambda - backend.calibrated_lambda).abs() / backend.calibrated_lambda;
            if deviation <= self.config.invalidation_threshold {
                continue;
            }
            let previous_lambda = backend.calibrated_lambda;
            let (session, calib) = build_session(
                &backend.profile,
                backend.true_lambda,
                self.epoch,
                backend.store.clone(),
                self.config.threads_per_device,
            )?;
            backend.session = session;
            backend.calib = calib;
            backend.calibrated_lambda = backend.true_lambda;
            backend.calibrated_epoch = self.epoch;
            backend.invalidations += 1;
            backend.lambda_metric.set(as_khz(backend.true_lambda));
            self.metrics.invalidations.inc();
            self.registry
                .counter(&format!(
                    "fleet.device.{}.invalidations",
                    backend.profile.name
                ))
                .inc();
            self.events.emit(
                &Event::new("fleet.drift.invalidate")
                    .field("device", backend.profile.name.as_str())
                    .field("epoch", self.epoch)
                    .field("deviation", deviation),
            );
            invalidations.push(Invalidation {
                device: backend.profile.name.clone(),
                previous_lambda,
                new_lambda: backend.true_lambda,
                deviation,
            });
        }
        self.events.emit(
            &Event::new("fleet.epoch")
                .field("epoch", self.epoch)
                .field("invalidations", invalidations.len() as u64),
        );
        Ok(EpochReport {
            epoch: self.epoch,
            invalidations,
        })
    }

    /// The *actual* fidelity a small device would deliver on `circuit`
    /// right now: simulation under the ground-truth (drifted) λ rather
    /// than the calibrated one the dispatch predictor uses. The spread
    /// between this and the dispatch score is the cost of stale
    /// calibration — what `bench_fleet` reports as the predicted-vs-
    /// simulated gap.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownDevice`] for an unregistered name,
    /// [`FleetError::Service`] when the compile fails or the device is
    /// above [`MAX_EVAL_QUBITS`].
    pub fn ground_truth_fidelity(
        &self,
        device: &str,
        circuit: Circuit,
        options: CompileOptions,
    ) -> Result<f64, FleetError> {
        let backend = self.backend(device)?;
        if !backend.small() {
            return Err(FleetError::Service {
                device: device.to_string(),
                source: zz_service::Error::Eval {
                    job: options.default_label(),
                    detail: format!(
                        "{} qubits exceed the evaluation ceiling of {MAX_EVAL_QUBITS}",
                        backend.topology.qubit_count()
                    ),
                },
            });
        }
        let request = CompileRequest::new(circuit).with_options(options);
        let response = backend
            .session
            .compile(&request)
            .map_err(|source| FleetError::Service {
                device: device.to_string(),
                source,
            })?;
        Ok(fidelity_of(
            &response.compiled,
            &EvalConfig {
                lambda_mean: backend.true_lambda,
                lambda_std: backend.profile.lambda_std,
                crosstalk_seeds: self.config.eval_seeds.clone(),
                circuit_seed: 0,
                decoherence: Some((backend.profile.decoherence(), self.config.trajectories, 97)),
            },
        ))
    }

    /// Aggregates per-device job counts, scores, invalidations,
    /// calibration state and cache statistics into a [`FleetReport`].
    pub fn report(&self) -> FleetReport {
        FleetReport {
            epoch: self.epoch,
            dispatches: self.metrics.dispatch.get(),
            invalidations: self.metrics.invalidations.get(),
            devices: self
                .backends
                .iter()
                .map(|b| DeviceReport {
                    device: b.profile.name.clone(),
                    qubits: b.topology.qubit_count(),
                    jobs: b.jobs,
                    invalidations: b.invalidations,
                    calibrated_epoch: b.calibrated_epoch,
                    calibrated_lambda: b.calibrated_lambda,
                    true_lambda: b.true_lambda,
                    mean_score: if b.score_count == 0 {
                        f64::NAN
                    } else {
                        b.score_sum / b.score_count as f64
                    },
                    last_score: b.last_score,
                    calibration_runs: b.calib.calibration_runs(),
                    store: b.store.as_ref().map(|s| s.stats()),
                })
                .collect(),
        }
    }

    /// A device's session — compile directly against one backend,
    /// bypassing dispatch (tests and benches use this to probe cache
    /// state).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::UnknownDevice`] for an unregistered name.
    pub fn session(&self, device: &str) -> Result<&Session, FleetError> {
        Ok(&self.backend(device)?.session)
    }

    fn backend(&self, device: &str) -> Result<&Backend, FleetError> {
        self.backends
            .iter()
            .find(|b| b.profile.name == device)
            .ok_or_else(|| FleetError::UnknownDevice {
                device: device.to_string(),
            })
    }
}

/// Builds one backend's session: a dedicated calibration cache at
/// `(lambda, epoch)` — epoch-salting every calibration disk key — and a
/// target characterized at that λ over the device's shard.
fn build_session(
    profile: &DeviceProfile,
    lambda: f64,
    epoch: u64,
    store: Option<Arc<ArtifactStore>>,
    threads: usize,
) -> Result<(Session, Arc<CalibCache>), FleetError> {
    let calib = Arc::new(CalibCache::at(lambda, epoch));
    let mut builder = Target::builder()
        .topology(profile.topology())
        .noise(lambda, profile.lambda_std)
        .durations(profile.durations)
        .calib_cache(Arc::clone(&calib));
    if let Some(store) = store {
        builder = builder.store(store);
    }
    let target = builder.build().map_err(|source| FleetError::Service {
        device: profile.name.clone(),
        source,
    })?;
    Ok((Session::with_threads(target, threads), calib))
}

/// The analytic fidelity proxy for devices above the evaluation ceiling:
/// first-order residual-ZZ dephasing `exp(-λ·Σ NC·duration)` times the
/// decoherence envelope `exp(-duration/T2)`. Monotone in the plan
/// metrics, comparable against simulated scores, `O(layers)` at any
/// device size.
fn plan_metrics_score(response: &CompileResponse, lambda: f64, t2_us: f64) -> f64 {
    let summary = response.plan_metrics();
    let residual = (-lambda * summary.residual_zz_weight).exp();
    let coherence = (-summary.duration_ns / (t2_us * 1000.0)).exp();
    residual * coherence
}

/// Calibrated λ (rad/ns) as an integer gauge value in kHz.
fn as_khz(lambda: f64) -> i64 {
    (lambda / zz_sim::khz(1.0)).round() as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_names_are_rejected() {
        let mut fleet = Fleet::new(FleetConfig::default());
        fleet
            .add_device(DeviceProfile::paper_grid())
            .expect("first");
        let err = fleet.add_device(DeviceProfile::paper_grid()).unwrap_err();
        assert!(matches!(err, FleetError::DuplicateDevice { .. }), "{err}");
    }

    #[test]
    fn unknown_devices_are_typed_errors() {
        let fleet = Fleet::new(FleetConfig::default());
        assert!(matches!(
            fleet.true_lambda("nope"),
            Err(FleetError::UnknownDevice { .. })
        ));
    }

    #[test]
    fn an_empty_fleet_has_no_eligible_backend() {
        let mut fleet = Fleet::new(FleetConfig::default());
        let circuit = zz_circuit::bench::generate(zz_circuit::bench::BenchmarkKind::Qft, 4, 7);
        let err = fleet
            .submit(circuit, CompileOptions::default())
            .unwrap_err();
        assert!(matches!(err, FleetError::NoEligibleBackend { qubits: 4 }));
    }

    #[test]
    fn khz_gauge_inverts_the_sim_unit() {
        assert_eq!(as_khz(zz_sim::khz(200.0)), 200);
        assert_eq!(as_khz(zz_sim::khz(15.4)), 15);
    }
}
