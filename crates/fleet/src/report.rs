//! [`FleetReport`]: the aggregate view of a fleet's lifetime —
//! per-device job counts, dispatch scores, drift/invalidation events and
//! cache statistics — with the `Display` rendering the example binaries
//! print.

use zz_persist::StoreStats;

/// One device's slice of a [`FleetReport`].
#[derive(Clone, Debug)]
pub struct DeviceReport {
    /// The device name.
    pub device: String,
    /// Qubits on the device.
    pub qubits: usize,
    /// Jobs dispatched to this device.
    pub jobs: usize,
    /// Times drift invalidated this device's calibration.
    pub invalidations: usize,
    /// The epoch the current calibration was taken at.
    pub calibrated_epoch: u64,
    /// The mean λ the current calibration characterized (rad/ns).
    pub calibrated_lambda: f64,
    /// The ground-truth (drifted) mean λ right now (rad/ns).
    pub true_lambda: f64,
    /// Mean predicted-fidelity score over every dispatch this device
    /// was a candidate in (`NaN` when never scored).
    pub mean_score: f64,
    /// The most recent candidate score (`NaN` when never scored).
    pub last_score: f64,
    /// Calibration measurements the current cache has run.
    pub calibration_runs: usize,
    /// The device shard's read/write counters, when the fleet persists.
    pub store: Option<StoreStats>,
}

/// Aggregate outcome of a fleet's lifetime so far (see
/// [`Fleet::report`](crate::Fleet::report)).
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// The fleet's current epoch.
    pub epoch: u64,
    /// Total jobs dispatched.
    pub dispatches: u64,
    /// Total calibrations invalidated by drift, across devices.
    pub invalidations: u64,
    /// Per-device breakdown, in registration order.
    pub devices: Vec<DeviceReport>,
}

impl std::fmt::Display for FleetReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fleet @ epoch {}: {} dispatch(es), {} invalidation(s)",
            self.epoch, self.dispatches, self.invalidations
        )?;
        for d in &self.devices {
            write!(
                f,
                "  {:<18} {:>4}q  {:>3} job(s)  {} invalidation(s)  calib@e{}  score last/mean {:.4}/{:.4}",
                d.device,
                d.qubits,
                d.jobs,
                d.invalidations,
                d.calibrated_epoch,
                d.last_score,
                d.mean_score,
            )?;
            if let Some(s) = &d.store {
                write!(f, "  disk {}h/{}m/{}w", s.hits, s.misses, s.writes)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_every_device() {
        let report = FleetReport {
            epoch: 2,
            dispatches: 5,
            invalidations: 1,
            devices: vec![DeviceReport {
                device: "paper-grid".into(),
                qubits: 12,
                jobs: 5,
                invalidations: 1,
                calibrated_epoch: 2,
                calibrated_lambda: 1.0e-3,
                true_lambda: 1.1e-3,
                mean_score: 0.93,
                last_score: 0.95,
                calibration_runs: 1,
                store: Some(StoreStats {
                    hits: 3,
                    misses: 2,
                    writes: 2,
                    write_errors: 0,
                }),
            }],
        };
        let text = report.to_string();
        assert!(text.contains("epoch 2"), "{text}");
        assert!(text.contains("paper-grid"), "{text}");
        assert!(text.contains("disk 3h/2m/2w"), "{text}");
    }
}
