//! `zz_fleet` — a multi-backend fleet over [`zz_service`] sessions:
//! heterogeneous device profiles, deterministic calibration drift,
//! fidelity-predictive dispatch and per-device artifact shards.
//!
//! The paper's co-optimization always targets one static device; a
//! deployment routes jobs across a *fleet* whose ZZ characterizations
//! drift and must be re-calibrated. This crate models exactly that:
//!
//! * **[`DeviceProfile`]** — the static description of one backend
//!   (topology family, ZZ strength distribution, `T1`/`T2`, gate
//!   durations). Three shipped profiles span the literature's device
//!   regimes: [`DeviceProfile::paper_grid`],
//!   [`DeviceProfile::tunable_coupler`] (order-of-magnitude weaker
//!   residual ZZ) and [`DeviceProfile::heavy_hex_static`] (strong
//!   always-on ZZ, above the simulation ceiling).
//! * **[`DriftModel`]** — a stateless, seedable multiplicative walk on
//!   each device's mean coupling strength; the drifted value is a pure
//!   function of `(seed, device, epoch)`, so fleets are reproducible
//!   bit-for-bit.
//! * **[`Fleet`]** — owns one [`zz_service::Session`] per backend.
//!   [`Fleet::submit`] compiles on every eligible backend, scores each
//!   by predicted fidelity (simulation at the calibrated noise for
//!   devices within the evaluation ceiling, the residual-ZZ plan-metrics
//!   proxy above it) and dispatches to the best;
//!   [`Fleet::advance_epoch`] drifts ground truth and re-characterizes
//!   any device past the invalidation threshold — swapping in a fresh
//!   [`zz_core::calib::CalibCache`] whose epoch-salted keys can never
//!   resurrect a stale disk artifact, while other devices' shards stay
//!   warm.
//!
//! # Example
//!
//! ```
//! use zz_circuit::bench::{generate, BenchmarkKind};
//! use zz_fleet::{Fleet, FleetConfig};
//! use zz_service::CompileOptions;
//!
//! let mut fleet = Fleet::standard(FleetConfig {
//!     threads_per_device: 1,
//!     ..FleetConfig::default()
//! })?;
//! let dispatch = fleet.submit(
//!     generate(BenchmarkKind::Qft, 4, 7),
//!     CompileOptions::default(),
//! )?;
//! // Three heterogeneous backends scored; the weak-ZZ tunable-coupler
//! // device predicts the best fidelity for this small job.
//! assert_eq!(dispatch.candidates.len(), 3);
//! assert_eq!(dispatch.device, "tunable-coupler");
//!
//! let epoch = fleet.advance_epoch()?;
//! assert_eq!(epoch.epoch, 1);
//! println!("{}", fleet.report());
//! # Ok::<(), zz_fleet::FleetError>(())
//! ```

#![warn(missing_docs)]

mod drift;
mod fleet;
mod profile;
mod report;

pub use drift::DriftModel;
pub use fleet::{
    CandidateScore, Dispatch, EpochReport, Fleet, FleetConfig, FleetError, Invalidation, ScoreKind,
};
pub use profile::{DeviceProfile, TopologyFamily};
pub use report::{DeviceReport, FleetReport};
