//! [`DeviceProfile`]: the static description a fleet builds each backend
//! from — topology family, ZZ characterization, decoherence times and
//! gate durations.
//!
//! The three shipped profiles span the device regimes of the source
//! papers: the paper's own fixed-coupling grid, a tunable-coupler device
//! whose residual ZZ is an order of magnitude weaker (arXiv 1810.04182
//! reports sub-kHz to tens-of-kHz residuals when the coupler is parked
//! at its zero), and a heavy-hex lattice with strong always-on ZZ of the
//! kind cancellation-drive experiments target (arXiv 2106.00675). They
//! differ in topology *family*, coupling strength *distribution* and
//! coherence budget, so dispatch decisions between them have real
//! fidelity consequences rather than being tie-breaks.

use zz_sched::GateDurations;
use zz_sim::density::Decoherence;
use zz_sim::khz;
use zz_topology::Topology;

/// Which lattice a device is laid out on. A family plus its size
/// parameters is enough to rebuild the topology, so profiles stay plain
/// data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyFamily {
    /// A `rows × cols` nearest-neighbor grid (the paper's layout).
    Grid {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// An IBM-style heavy-hex lattice of the given distance.
    HeavyHex {
        /// Code distance (odd; 3 → 18 qubits, 21 → 1000+).
        distance: usize,
    },
}

impl TopologyFamily {
    /// Builds the concrete topology.
    pub fn build(&self) -> Topology {
        match *self {
            TopologyFamily::Grid { rows, cols } => Topology::grid(rows, cols),
            TopologyFamily::HeavyHex { distance } => Topology::heavy_hex(distance),
        }
    }
}

/// The static characterization a fleet backend is built from. The
/// `lambda_*` fields are the device's *nominal* (epoch-0) ZZ strength
/// distribution; the fleet's drift model evolves the mean away from it
/// over epochs.
#[derive(Clone, Debug)]
pub struct DeviceProfile {
    /// Unique device name (also the artifact-shard directory and the
    /// per-device metric label).
    pub name: String,
    /// Lattice family and size.
    pub family: TopologyFamily,
    /// Nominal mean ZZ coupling strength (rad/ns).
    pub lambda_mean: f64,
    /// Nominal ZZ strength standard deviation (rad/ns).
    pub lambda_std: f64,
    /// Relaxation time `T1` (µs).
    pub t1_us: f64,
    /// Dephasing time `T2` (µs), at most `2·T1`.
    pub t2_us: f64,
    /// Gate-duration table measured on this device.
    pub durations: GateDurations,
}

impl DeviceProfile {
    /// The source paper's device: the 3×4 grid with
    /// `λ ~ N(2π·200 kHz, (2π·50 kHz)²)` fixed couplings and 20 ns
    /// pulses.
    pub fn paper_grid() -> Self {
        DeviceProfile {
            name: "paper-grid".into(),
            family: TopologyFamily::Grid { rows: 3, cols: 4 },
            lambda_mean: khz(200.0),
            lambda_std: khz(50.0),
            t1_us: 85.0,
            t2_us: 110.0,
            durations: GateDurations::standard(),
        }
    }

    /// A tunable-coupler device in the style of arXiv 1810.04182: same
    /// 3×4 grid, but the couplers parked near their ZZ zero leave an
    /// order-of-magnitude weaker residual (`λ ~ N(2π·15 kHz,
    /// (2π·4 kHz)²)`) and the lighter junctions buy longer coherence.
    pub fn tunable_coupler() -> Self {
        DeviceProfile {
            name: "tunable-coupler".into(),
            family: TopologyFamily::Grid { rows: 3, cols: 4 },
            lambda_mean: khz(15.0),
            lambda_std: khz(4.0),
            t1_us: 120.0,
            t2_us: 150.0,
            durations: GateDurations::standard(),
        }
    }

    /// A heavy-hex device with strong always-on ZZ of the kind
    /// cancellation-drive experiments target (arXiv 2106.00675):
    /// `λ ~ N(2π·350 kHz, (2π·90 kHz)²)`, a slower cross-resonance
    /// `ZX90` and a tighter dephasing budget. At distance 3 (25 qubits)
    /// it sits above the density-matrix evaluation ceiling, so dispatch
    /// scores it through plan metrics rather than simulation.
    pub fn heavy_hex_static() -> Self {
        DeviceProfile {
            name: "heavy-hex-static".into(),
            family: TopologyFamily::HeavyHex { distance: 3 },
            lambda_mean: khz(350.0),
            lambda_std: khz(90.0),
            t1_us: 70.0,
            t2_us: 60.0,
            durations: GateDurations {
                x90: 20.0,
                zx90: 60.0,
                id: 20.0,
            },
        }
    }

    /// The three shipped profiles — one per device regime — in the
    /// order above. The standard heterogeneous fleet for examples,
    /// benches and tests.
    pub fn standard_fleet() -> Vec<DeviceProfile> {
        vec![
            DeviceProfile::paper_grid(),
            DeviceProfile::tunable_coupler(),
            DeviceProfile::heavy_hex_static(),
        ]
    }

    /// Builds this profile's topology.
    pub fn topology(&self) -> Topology {
        self.family.build()
    }

    /// This profile's decoherence channel (`T1`/`T2` in the simulator's
    /// nanosecond units).
    pub fn decoherence(&self) -> Decoherence {
        Decoherence::new(self.t1_us * 1000.0, self.t2_us * 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_standard_fleet_is_heterogeneous() {
        let fleet = DeviceProfile::standard_fleet();
        assert_eq!(fleet.len(), 3);
        let mut names: Vec<&str> = fleet.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 3, "unique names");
        // Distinct ZZ regimes: tunable-coupler is an order of magnitude
        // below the paper grid, heavy-hex well above it.
        let lambda = |name: &str| {
            fleet
                .iter()
                .find(|p| p.name == name)
                .expect("shipped")
                .lambda_mean
        };
        assert!(lambda("tunable-coupler") * 10.0 < lambda("paper-grid"));
        assert!(lambda("heavy-hex-static") > lambda("paper-grid"));
    }

    #[test]
    fn profiles_build_their_topologies() {
        assert_eq!(DeviceProfile::paper_grid().topology().qubit_count(), 12);
        assert_eq!(
            DeviceProfile::tunable_coupler().topology().qubit_count(),
            12
        );
        let hex = DeviceProfile::heavy_hex_static().topology();
        assert!(
            hex.qubit_count() > zz_core::evaluate::MAX_EVAL_QUBITS,
            "heavy-hex must exercise the plan-metrics scoring path, got {}",
            hex.qubit_count()
        );
    }

    #[test]
    fn decoherence_times_are_physical() {
        for profile in DeviceProfile::standard_fleet() {
            let _ = profile.decoherence(); // asserts 0 < T2 ≤ 2·T1
        }
    }
}
